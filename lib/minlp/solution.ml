type reason = Engine.Status.reason =
  | Node_limit
  | Iter_limit
  | Round_limit
  | Deadline
  | Cancelled
  | Audit_failed

type status = Engine.Status.t =
  | Optimal
  | Feasible of reason
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason

type stats = { nodes : int; lp_solves : int; nlp_solves : int; cuts : int }
type t = { status : status; x : float array; obj : float; bound : float; stats : stats }

let empty_stats = { nodes = 0; lp_solves = 0; nlp_solves = 0; cuts = 0 }
let reason_to_string = Engine.Status.reason_to_string
let status_to_string = Engine.Status.to_string

let has_incumbent s =
  match s.status with
  | Optimal | Feasible _ -> Array.length s.x > 0
  | Budget_exhausted _ -> Array.length s.x > 0
  | Infeasible | Unbounded -> false

let reason_of_budget = Engine.Status.reason_of_budget

let certify ~producer ?budget ?(minimize = true) ?(tol = 1e-6) ?(pruned = 0) s =
  let witness = if has_incumbent s then Some (Array.copy s.x) else None in
  let evidence =
    match (s.status, witness) with
    | Optimal, Some _ ->
      (* a rel-gap stop proves optimality through the bound; a drained
         tree proves it through the cover (bound = incumbent then, so
         the gap test subsumes it — the cover form survives for solvers
         that report a coarser bound than their pruning used) *)
      let key = if minimize then s.obj else -.s.obj in
      if Float.is_finite s.bound && key -. s.bound <= tol *. (1. +. Float.abs key) then
        Engine.Certificate.Gap_closed
      else
        Engine.Certificate.Cover_exhausted
          { Engine.Certificate.explored = s.stats.nodes; pruned; open_branches = 0 }
    | (Feasible _ | Budget_exhausted _), Some _ -> Engine.Certificate.Incumbent_only
    | _, _ -> Engine.Certificate.No_witness
  in
  Engine.Certificate.make ~producer ~claimed_status:s.status ?witness ~claimed_obj:s.obj
    ~claimed_bound:s.bound ~minimize ~tol ~evidence
    ?budget_stop:
      (match Engine.Budget.inspected budget with
      | Some r -> Some (Engine.Budget.reason_to_string r)
      | None -> None)
    ()

let to_result ~producer ?budget ?minimize ?tol ?pruned s =
  if has_incumbent s then
    Ok
      {
        Engine.Solver_intf.value = s;
        cert = certify ~producer ?budget ?minimize ?tol ?pruned s;
      }
  else Error s.status

let pp fmt s =
  Format.fprintf fmt "@[<h>%s obj=%g bound=%g nodes=%d lp=%d nlp=%d cuts=%d@]"
    (status_to_string s.status) s.obj s.bound s.stats.nodes s.stats.lp_solves s.stats.nlp_solves
    s.stats.cuts
