type reason = Node_limit | Iter_limit | Round_limit | Deadline | Cancelled

type status =
  | Optimal
  | Feasible of reason
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason

type stats = { nodes : int; lp_solves : int; nlp_solves : int; cuts : int }
type t = { status : status; x : float array; obj : float; bound : float; stats : stats }

let empty_stats = { nodes = 0; lp_solves = 0; nlp_solves = 0; cuts = 0 }

let reason_to_string = function
  | Node_limit -> "node-limit"
  | Iter_limit -> "iter-limit"
  | Round_limit -> "round-limit"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible r -> Printf.sprintf "feasible(%s)" (reason_to_string r)
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Budget_exhausted r -> Printf.sprintf "budget-exhausted(%s)" (reason_to_string r)

let has_incumbent s =
  match s.status with
  | Optimal | Feasible _ -> Array.length s.x > 0
  | Budget_exhausted _ -> Array.length s.x > 0
  | Infeasible | Unbounded -> false

let reason_of_budget = function
  | Engine.Budget.Deadline -> Deadline
  | Engine.Budget.Node_limit -> Node_limit
  | Engine.Budget.Iter_limit -> Iter_limit
  | Engine.Budget.Cancelled -> Cancelled

let pp fmt s =
  Format.fprintf fmt "@[<h>%s obj=%g bound=%g nodes=%d lp=%d nlp=%d cuts=%d@]"
    (status_to_string s.status) s.obj s.bound s.stats.nodes s.stats.lp_solves s.stats.nlp_solves
    s.stats.cuts
