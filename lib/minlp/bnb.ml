type options = { max_nodes : int; tol_int : float; rel_gap : float; branch_sos_first : bool }

let default_options = { max_nodes = 20_000; tol_int = 1e-6; rel_gap = 1e-6; branch_sos_first = true }

type node = { nlo : float array; nhi : float array; depth : int; bound : float; start : float array }

let run ?(options = default_options) ?budget ?tally ?warm_start (p0 : Problem.t) =
  let p, orig_dim = Problem.normalize p0 in
  let pre = Presolve.tighten p in
  if pre.Presolve.infeasible then
    {
      Solution.status = Solution.Infeasible;
      x = [||];
      obj = nan;
      bound = nan;
      stats = Solution.empty_stats;
    }
  else begin
  let p = pre.Presolve.problem in
  let key v = if p.minimize then v else -.v in
  let nlp_solves = ref 0 in
  let nodes_processed = ref 0 in
  let incumbent = ref None in
  let incumbent_key = ref infinity in
  (* Warm start: lift a feasible point of [p0] through the epigraph
     normalization and prime the incumbent. Presolve only tightens
     bounds around the feasible set, so a feasible point survives it.
     Infeasible or mis-sized points are silently ignored. The lifted
     point also seeds the root relaxation: the node relaxations are
     solved by a local method, so pruning against the primed incumbent
     is only safe when the root solve starts from a point at least as
     good as that incumbent. *)
  let warm_lifted = ref None in
  (match warm_start with
  | Some x0 -> (
    match Problem.lift_point ~orig:p0 p x0 with
    | Some x0' when Problem.feasible ~tol:options.tol_int p x0' ->
      let x0' = Problem.round_integral p x0' in
      let obj0 = Problem.objective_value p x0' in
      incumbent := Some (x0', obj0);
      incumbent_key := key obj0;
      warm_lifted := Some x0';
      Engine.Telemetry.set_warm_start_used tally
    | Some _ | None -> ())
  | None -> ());
  (* one compiled relaxation context for the whole tree: the node loop
     only swaps boxes, never re-lowers expressions *)
  let rctx = Relax.context p in
  let leq a b = a.bound <= b.bound in
  let open_nodes = Ds.Heap.create ~leq in
  let root_start =
    match !warm_lifted with Some w -> w | None -> Relax.midpoint p.lo p.hi
  in
  Ds.Heap.push open_nodes
    { nlo = Array.copy p.lo; nhi = Array.copy p.hi; depth = 0; bound = neg_infinity; start = root_start };
  let stopped : [ `Internal of Solution.reason | `Budget of Solution.reason ] option ref =
    ref None
  in
  let prune_tol () = options.rel_gap *. Float.max 1. (Float.abs !incumbent_key) in
  let push_child node j ~lo ~hi start =
    let nlo = Array.copy node.nlo and nhi = Array.copy node.nhi in
    nlo.(j) <- Float.max nlo.(j) lo;
    nhi.(j) <- Float.min nhi.(j) hi;
    if nlo.(j) <= nhi.(j) then
      Ds.Heap.push open_nodes { nlo; nhi; depth = node.depth + 1; bound = node.bound; start }
  in
  let push_sos_child node subset start =
    let nlo = Array.copy node.nlo and nhi = Array.copy node.nhi in
    let ok = ref true in
    List.iter
      (fun (j, _) ->
        if nlo.(j) > 0. || nhi.(j) < 0. then ok := false
        else begin
          nlo.(j) <- 0.;
          nhi.(j) <- 0.
        end)
      subset;
    if !ok then Ds.Heap.push open_nodes { nlo; nhi; depth = node.depth + 1; bound = node.bound; start }
  in
  let continue_loop = ref true in
  while !continue_loop && not (Ds.Heap.is_empty open_nodes) do
    match Engine.Budget.stopped budget with
    | Some r ->
      stopped := Some (`Budget (Solution.reason_of_budget r));
      continue_loop := false
    | None ->
    if !nodes_processed >= options.max_nodes then begin
      stopped := Some (`Internal Solution.Node_limit);
      continue_loop := false
    end
    else begin
      let node = Ds.Heap.pop open_nodes in
      if node.bound >= !incumbent_key -. prune_tol () then
        Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_pruned 1
      else begin
        incr nodes_processed;
        incr nlp_solves;
        (match budget with Some b -> Engine.Budget.add_nodes b 1 | None -> ());
        Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_expanded 1;
        let start = Numerics.Vec.clamp ~lo:node.nlo ~hi:node.nhi node.start in
        let r = Relax.solve_nlp_ctx ?budget ?tally rctx ~lo:node.nlo ~hi:node.nhi ~start in
        if not r.Relax.feasible then
          Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_pruned 1
        else begin
          let k = key r.Relax.obj in
          if k >= !incumbent_key -. prune_tol () then ()
          else begin
            let x = r.Relax.x in
            let sos_viol =
              if options.branch_sos_first then Problem.violated_sos1 ~tol:options.tol_int p x
              else None
            in
            match sos_viol with
            | Some members ->
              let s1, s2 = Milp.sos_split members x in
              let node = { node with bound = k } in
              push_sos_child node s1 x;
              push_sos_child node s2 x
            | None -> (
              match Problem.most_fractional ~tol:options.tol_int p x with
              | Some j ->
                let node = { node with bound = k } in
                push_child node j ~lo:neg_infinity ~hi:(Float.floor x.(j)) x;
                push_child node j ~lo:(Float.ceil x.(j)) ~hi:infinity x
              | None -> (
                match Problem.violated_sos1 ~tol:options.tol_int p x with
                | Some members ->
                  let s1, s2 = Milp.sos_split members x in
                  let node = { node with bound = k } in
                  push_sos_child node s1 x;
                  push_sos_child node s2 x
                | None ->
                  (* polish: re-solve with the integer assignment fixed
                     so the continuous completion is as good as the
                     subproblem allows (rounding the relaxation point
                     alone can be measurably suboptimal) *)
                  let xr = Problem.round_integral p x in
                  let plo = Array.copy node.nlo and phi = Array.copy node.nhi in
                  Array.iteri
                    (fun j kind ->
                      match kind with
                      | Problem.Integer | Problem.Binary ->
                        plo.(j) <- xr.(j);
                        phi.(j) <- xr.(j)
                      | Problem.Continuous -> ())
                    p.kinds;
                  incr nlp_solves;
                  let polished = Relax.solve_nlp_ctx ?budget ?tally rctx ~lo:plo ~hi:phi ~start:xr in
                  let cand_x, cand_obj =
                    if polished.Relax.feasible && key polished.Relax.obj < k then
                      (Problem.round_integral p polished.Relax.x, polished.Relax.obj)
                    else (xr, r.Relax.obj)
                  in
                  if key cand_obj < !incumbent_key then begin
                    incumbent_key := key cand_obj;
                    incumbent := Some (cand_x, cand_obj);
                    Engine.Telemetry.bump tally Engine.Telemetry.add_incumbent_updates 1
                  end))
          end
        end
      end
    end
  done;
  let best_open_bound = Ds.Heap.fold (fun acc n -> Float.min acc n.bound) infinity open_nodes in
  let bound = Float.min !incumbent_key best_open_bound in
  let stats =
    { Solution.nodes = !nodes_processed; lp_solves = 0; nlp_solves = !nlp_solves; cuts = 0 }
  in
  (* a budget stop can land inside a node's NLP relaxation: the aborted
     subproblem reads as infeasible, the node is dropped childless, and
     the heap can drain to empty without the top-of-loop check ever
     firing. Re-inspect the budget before classifying the result —
     without charging a poll, since this is bookkeeping, not solving. *)
  (match !stopped with
  | Some (`Budget _) -> ()
  | None | Some (`Internal _) -> (
    match Engine.Budget.inspected budget with
    | Some r -> stopped := Some (`Budget (Solution.reason_of_budget r))
    | None -> ()));
  match !incumbent with
  | Some (x, _) ->
    let status =
      match !stopped with
      | Some (`Budget r) -> Solution.Budget_exhausted r
      | Some (`Internal r) -> Solution.Feasible r
      | None -> Solution.Optimal
    in
    let x = Array.sub x 0 orig_dim in
    (* report the objective of the point actually returned: an
       early-aborted subproblem can leave the epigraph variable above
       the true objective value, and the certificate claims must match
       the witness exactly. The bound folds in the (possibly inflated)
       incumbent key, so clamp it to the recomputed objective — a
       feasible point's value is always a valid upper bound. *)
    let obj = Problem.objective_value p0 x in
    let bound = Float.min bound (key obj) in
    { Solution.status; x; obj; bound; stats }
  | None ->
    let status =
      match !stopped with
      | Some (`Internal r | `Budget r) -> Solution.Budget_exhausted r
      | None -> Solution.Infeasible
    in
    { Solution.status; x = [||]; obj = nan; bound; stats }
  end


let solve ?budget ?cancel ?warm_start ?trace p =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let sol = run ?budget ?tally:trace ?warm_start p in
  Solution.to_result ~producer:"minlp.bnb" ?budget ~minimize:p.Problem.minimize
    ~tol:default_options.rel_gap
    ~pruned:(match trace with Some t -> t.Engine.Telemetry.nodes_pruned | None -> 0)
    sol
