type nlp_result = {
  x : float array;
  obj : float;
  violation : float;
  feasible : bool;
  converged : bool;
}

let midpoint lo hi =
  Array.init (Array.length lo) (fun j ->
      let l = lo.(j) and h = hi.(j) in
      if Float.is_finite l && Float.is_finite h then 0.5 *. (l +. h)
      else if Float.is_finite l then l +. 1.
      else if Float.is_finite h then h -. 1.
      else 0.)

(* Compiled relaxation context.

   Branch-and-bound solves one continuous relaxation per node over the
   SAME expressions — only the box changes.  Compiling the objective
   and constraint programs (and the linear LP skeleton) once per run,
   instead of once per node, removes the dominant per-node setup cost;
   the compiled programs evaluate bit-for-bit identically to the
   interpreted [Expr.eval], so node trajectories are unchanged. *)
type ctx = {
  p : Problem.t;
  lin_rows : Lp.Lp_problem.constr list;
  lp_base : Lp.Lp_problem.t;  (* linear rows only; bounds swapped per node *)
  nlp_constraints : Nlp.Nlp_problem.constr list;
  obj_prog : Expr.Compiled.program;  (* problem-sense objective *)
  f : float array -> float;  (* minimization-sense objective *)
  f_grad : float array -> float array;
  f_grad_into : float array -> float array -> unit;
}

let to_nlp_constr ~num_vars (c : Problem.constr) =
  let g, label =
    match c.sense with
    | Lp.Lp_problem.Le -> (Expr.(c.expr - const c.rhs), c.cname)
    | Lp.Lp_problem.Ge -> (Expr.(const c.rhs - c.expr), c.cname)
    | Lp.Lp_problem.Eq -> (Expr.(c.expr - const c.rhs), c.cname)
  in
  let prog = Expr.Compiled.compile g in
  let cgrad = Expr.Compiled.compile_gradient g in
  (* every evaluation point in the NLP layer has length [num_vars], so
     the arity guard can be paid once here instead of per call *)
  let gf =
    if Expr.Compiled.arity prog <= num_vars then Expr.Compiled.unsafe_fn prog
    else fun x -> Expr.Compiled.eval prog x
  in
  let grad x =
    let out = Array.make (Array.length x) 0. in
    Expr.Compiled.grad_into cgrad x out;
    out
  in
  let grad_acc x w acc = Expr.Compiled.grad_acc cgrad x w acc in
  match c.sense with
  | Lp.Lp_problem.Eq -> Nlp.Nlp_problem.eq ~grad ~grad_acc ~label gf
  | Lp.Lp_problem.Le | Lp.Lp_problem.Ge -> Nlp.Nlp_problem.ineq ~grad ~grad_acc ~label gf

let context (p : Problem.t) =
  let sign = if p.minimize then 1. else -1. in
  let obj_prog = Expr.Compiled.compile p.objective in
  let obj_grad = Expr.Compiled.compile_gradient p.objective in
  let f =
    (* [sign *. v] with sign = 1. is exact for every float, so the
       minimization path calls the compiled closure directly *)
    if p.minimize && Expr.Compiled.arity obj_prog <= p.num_vars then
      Expr.Compiled.unsafe_fn obj_prog
    else fun x -> sign *. Expr.Compiled.eval obj_prog x
  in
  let f_grad_into x out =
    Expr.Compiled.grad_into obj_grad x out;
    if sign <> 1. then
      for i = 0 to Array.length out - 1 do
        out.(i) <- -.out.(i)
      done
  in
  let f_grad x =
    let out = Array.make p.num_vars 0. in
    f_grad_into x out;
    out
  in
  let lin_rows, _ = Problem.split_constraints p in
  let lp_base =
    Lp.Lp_problem.add_constraints (Lp.Lp_problem.make ~num_vars:p.num_vars ()) lin_rows
  in
  {
    p;
    lin_rows;
    lp_base;
    nlp_constraints = List.map (to_nlp_constr ~num_vars:p.num_vars) p.constraints;
    obj_prog;
    f;
    f_grad;
    f_grad_into;
  }

(* Feasibility of the linear part is decidable exactly with the LP
   solver; use it both to detect infeasible nodes soundly and to seed
   the augmented-Lagrangian solver with a linearly-feasible start
   (midpoints of boxes with many coupled equalities stall it).  The LP
   goes through {!Lp.Presolve} — fixed-variable substitution, trivial
   row elimination and power-of-two scaling — before the simplex. *)
let linear_start_ctx ?budget ?tally ctx ~lo ~hi ~start =
  let violated =
    List.exists
      (fun row -> not (Lp.Lp_problem.constraint_satisfied ~tol:1e-7 row start))
      ctx.lin_rows
  in
  if not violated then `Start start
  else begin
    let lp = Lp.Lp_problem.with_bounds ctx.lp_base ~lo ~hi in
    match Lp.Presolve.reduce lp with
    | `Infeasible -> `Infeasible
    | `Solved x -> `Start x
    | `Reduced red -> (
      match Lp.Simplex.run ?budget ?tally (Lp.Presolve.reduced red) with
      | { Lp.Simplex.status = Lp.Simplex.Optimal; x; _ } ->
        `Start (Lp.Presolve.recover red x)
      | { Lp.Simplex.status = Lp.Simplex.Infeasible; _ } -> `Infeasible
      | { Lp.Simplex.status = Lp.Simplex.Unbounded | Lp.Simplex.Iteration_limit; _ } ->
        `Start start)
  end

let solve_nlp_ctx ?(tol_feas = 1e-6) ?budget ?tally ctx ~lo ~hi ~start =
  match linear_start_ctx ?budget ?tally ctx ~lo ~hi ~start with
  | `Infeasible ->
    {
      x = Array.copy start;
      obj = nan;
      violation = infinity;
      feasible = false;
      converged = true;
    }
  | `Start lp_start ->
    let nlp =
      Nlp.Nlp_problem.make ~dim:ctx.p.num_vars ~f:ctx.f ~f_grad:ctx.f_grad
        ~f_grad_into:ctx.f_grad_into ~lo ~hi ~constraints:ctx.nlp_constraints ()
    in
    let attempt s =
      Engine.Telemetry.bump tally Engine.Telemetry.add_nlp_solves 1;
      Nlp.Auglag.run ~tol_feas ?budget ?tally nlp s
    in
    let result_of (r : Nlp.Auglag.result) =
      {
        x = r.Nlp.Auglag.x;
        obj = Expr.Compiled.eval ctx.obj_prog r.Nlp.Auglag.x;
        violation = r.Nlp.Auglag.violation;
        feasible = r.Nlp.Auglag.violation <= tol_feas *. 100.;
        converged = r.Nlp.Auglag.converged;
      }
    in
    let first = result_of (attempt lp_start) in
    if first.feasible then first
    else begin
      (* a local stall is not proof of infeasibility: retry from the
         caller's start and the box midpoint, keep the best *)
      let candidates =
        [ Numerics.Vec.clamp ~lo ~hi start; Numerics.Vec.clamp ~lo ~hi (midpoint lo hi) ]
      in
      List.fold_left
        (fun best s ->
          if best.feasible || Engine.Budget.stopped budget <> None then best
          else begin
            let r = result_of (attempt s) in
            if r.violation < best.violation || (r.feasible && not best.feasible) then r else best
          end)
        first candidates
    end

let solve_nlp ?tol_feas ?budget ?tally (p : Problem.t) ~lo ~hi ~start =
  solve_nlp_ctx ?tol_feas ?budget ?tally (context p) ~lo ~hi ~start

let oa_cut (c : Problem.constr) x =
  (match c.sense with
  | Lp.Lp_problem.Le -> ()
  | Lp.Lp_problem.Ge | Lp.Lp_problem.Eq ->
    invalid_arg "Relax.oa_cut: only <= nonlinear constraints are supported");
  let value, grad = Expr.linearize c.expr x in
  (* g(x0) + grad·(x - x0) <= rhs  ⇔  grad·x <= rhs - g(x0) + grad·x0 *)
  let coeffs = ref [] in
  let shift = ref 0. in
  Array.iteri
    (fun j gj ->
      if gj <> 0. then begin
        coeffs := (j, gj) :: !coeffs;
        shift := !shift +. (gj *. x.(j))
      end)
    grad;
  { Lp.Lp_problem.coeffs = List.rev !coeffs; sense = Lp.Lp_problem.Le; rhs = c.rhs -. value +. !shift }

let violated_nl ?(tol = 1e-6) (p : Problem.t) x =
  let _, nl = Problem.split_constraints p in
  List.filter
    (fun (c : Problem.constr) ->
      let v = Expr.eval c.expr x in
      v > c.rhs +. (tol *. (1. +. Float.abs c.rhs)))
    nl
