type nlp_result = {
  x : float array;
  obj : float;
  violation : float;
  feasible : bool;
  converged : bool;
}

let midpoint lo hi =
  Array.init (Array.length lo) (fun j ->
      let l = lo.(j) and h = hi.(j) in
      if Float.is_finite l && Float.is_finite h then 0.5 *. (l +. h)
      else if Float.is_finite l then l +. 1.
      else if Float.is_finite h then h -. 1.
      else 0.)

let to_nlp_constr (c : Problem.constr) =
  let g, label =
    match c.sense with
    | Lp.Lp_problem.Le -> (Expr.(c.expr - const c.rhs), c.cname)
    | Lp.Lp_problem.Ge -> (Expr.(const c.rhs - c.expr), c.cname)
    | Lp.Lp_problem.Eq -> (Expr.(c.expr - const c.rhs), c.cname)
  in
  let grad = Expr.compile_gradient g in
  match c.sense with
  | Lp.Lp_problem.Eq -> Nlp.Nlp_problem.eq ~grad ~label (fun x -> Expr.eval g x)
  | Lp.Lp_problem.Le | Lp.Lp_problem.Ge ->
    Nlp.Nlp_problem.ineq ~grad ~label (fun x -> Expr.eval g x)

(* Feasibility of the linear part is decidable exactly with the LP
   solver; use it both to detect infeasible nodes soundly and to seed
   the augmented-Lagrangian solver with a linearly-feasible start
   (midpoints of boxes with many coupled equalities stall it). *)
let linear_start ?budget ?tally (p : Problem.t) ~lo ~hi ~start =
  let lin_rows, _ = Problem.split_constraints p in
  let violated =
    List.exists (fun row -> not (Lp.Lp_problem.constraint_satisfied ~tol:1e-7 row start)) lin_rows
  in
  if not violated then `Start start
  else begin
    let lp = Lp.Lp_problem.make ~num_vars:p.num_vars () in
    let lp = ref (Lp.Lp_problem.add_constraints lp lin_rows) in
    for j = 0 to p.num_vars - 1 do
      lp := Lp.Lp_problem.set_bounds !lp j ~lo:lo.(j) ~hi:hi.(j)
    done;
    match Lp.Simplex.run ?budget ?tally !lp with
    | { Lp.Simplex.status = Lp.Simplex.Optimal; x; _ } -> `Start x
    | { Lp.Simplex.status = Lp.Simplex.Infeasible; _ } -> `Infeasible
    | { Lp.Simplex.status = Lp.Simplex.Unbounded | Lp.Simplex.Iteration_limit; _ } -> `Start start
  end

let solve_nlp ?(tol_feas = 1e-6) ?budget ?tally (p : Problem.t) ~lo ~hi ~start =
  let sign = if p.minimize then 1. else -1. in
  let f x = sign *. Expr.eval p.objective x in
  let obj_grad = Expr.compile_gradient p.objective in
  let f_grad x =
    let g = obj_grad x in
    if sign = 1. then g else Array.map (fun v -> -.v) g
  in
  match linear_start ?budget ?tally p ~lo ~hi ~start with
  | `Infeasible ->
    {
      x = Array.copy start;
      obj = nan;
      violation = infinity;
      feasible = false;
      converged = true;
    }
  | `Start lp_start ->
    let nlp =
      Nlp.Nlp_problem.make ~dim:p.num_vars ~f ~f_grad ~lo ~hi
        ~constraints:(List.map to_nlp_constr p.constraints)
        ()
    in
    let attempt s =
      Engine.Telemetry.bump tally Engine.Telemetry.add_nlp_solves 1;
      Nlp.Auglag.run ~tol_feas ?budget ?tally nlp s
    in
    let result_of (r : Nlp.Auglag.result) =
      {
        x = r.Nlp.Auglag.x;
        obj = Expr.eval p.objective r.Nlp.Auglag.x;
        violation = r.Nlp.Auglag.violation;
        feasible = r.Nlp.Auglag.violation <= tol_feas *. 100.;
        converged = r.Nlp.Auglag.converged;
      }
    in
    let first = result_of (attempt lp_start) in
    if first.feasible then first
    else begin
      (* a local stall is not proof of infeasibility: retry from the
         caller's start and the box midpoint, keep the best *)
      let candidates =
        [ Numerics.Vec.clamp ~lo ~hi start; Numerics.Vec.clamp ~lo ~hi (midpoint lo hi) ]
      in
      List.fold_left
        (fun best s ->
          if best.feasible || Engine.Budget.stopped budget <> None then best
          else begin
            let r = result_of (attempt s) in
            if r.violation < best.violation || (r.feasible && not best.feasible) then r else best
          end)
        first candidates
    end

let oa_cut (c : Problem.constr) x =
  (match c.sense with
  | Lp.Lp_problem.Le -> ()
  | Lp.Lp_problem.Ge | Lp.Lp_problem.Eq ->
    invalid_arg "Relax.oa_cut: only <= nonlinear constraints are supported");
  let value, grad = Expr.linearize c.expr x in
  (* g(x0) + grad·(x - x0) <= rhs  ⇔  grad·x <= rhs - g(x0) + grad·x0 *)
  let coeffs = ref [] in
  let shift = ref 0. in
  Array.iteri
    (fun j gj ->
      if gj <> 0. then begin
        coeffs := (j, gj) :: !coeffs;
        shift := !shift +. (gj *. x.(j))
      end)
    grad;
  { Lp.Lp_problem.coeffs = List.rev !coeffs; sense = Lp.Lp_problem.Le; rhs = c.rhs -. value +. !shift }

let violated_nl ?(tol = 1e-6) (p : Problem.t) x =
  let _, nl = Problem.split_constraints p in
  List.filter
    (fun (c : Problem.constr) ->
      let v = Expr.eval c.expr x in
      v > c.rhs +. (tol *. (1. +. Float.abs c.rhs)))
    nl
