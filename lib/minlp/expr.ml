type t =
  | Const of float
  | Var of int
  | Add of t list
  | Mul of t * t
  | Neg of t
  | Div of t * t
  | Pow of t * float
  | Exp of t
  | Log of t

let const c = Const c

let var j =
  if j < 0 then invalid_arg "Expr.var: negative index";
  Var j

(* --- light smart constructors --- *)

let add es =
  let flat =
    List.concat_map (function Add inner -> inner | e -> [ e ]) es
  in
  let consts, rest = List.partition (function Const _ -> true | _ -> false) flat in
  let csum = List.fold_left (fun acc e -> match e with Const c -> acc +. c | _ -> acc) 0. consts in
  match (rest, csum) with
  | [], c -> Const c
  | [ e ], 0. -> e
  | es, 0. -> Add es
  | es, c -> Add (es @ [ Const c ])

let neg = function Const c -> Const (-.c) | Neg e -> e | e -> Neg e

let mul a b =
  match (a, b) with
  | Const 0., _ | _, Const 0. -> Const 0.
  | Const 1., e | e, Const 1. -> e
  | Const x, Const y -> Const (x *. y)
  | a, b -> Mul (a, b)

let div a b =
  match (a, b) with
  | _, Const 0. -> invalid_arg "Expr.div: division by constant zero"
  | Const 0., _ -> Const 0.
  | e, Const 1. -> e
  | Const x, Const y -> Const (x /. y)
  | a, b -> Div (a, b)

let pow e p =
  match (e, p) with
  | _, 0. -> Const 1.
  | e, 1. -> e
  | Const c, p -> Const (c ** p)
  | e, p -> Pow (e, p)

let exp_ = function Const c -> Const (exp c) | e -> Exp e
let log_ = function Const c when c > 0. -> Const (log c) | e -> Log e
let scale c e = mul (Const c) e
let linear coeffs = add (List.map (fun (j, c) -> mul (Const c) (Var j)) coeffs)
let ( + ) a b = add [ a; b ]
let ( - ) a b = add [ a; neg b ]
let ( * ) = mul
let ( / ) = div

let rec eval e x =
  match e with
  | Const c -> c
  | Var j ->
    if j >= Array.length x then invalid_arg "Expr.eval: variable index out of range";
    x.(j)
  | Add es -> List.fold_left (fun acc e -> acc +. eval e x) 0. es
  | Mul (a, b) -> eval a x *. eval b x
  | Neg a -> -.eval a x
  | Div (a, b) -> eval a x /. eval b x
  | Pow (a, p) -> eval a x ** p
  | Exp a -> exp (eval a x)
  | Log a -> log (eval a x)

let rec diff e j =
  match e with
  | Const _ -> Const 0.
  | Var k -> if k = j then Const 1. else Const 0.
  | Add es -> add (List.map (fun e -> diff e j) es)
  | Mul (a, b) -> add [ mul (diff a j) b; mul a (diff b j) ]
  | Neg a -> neg (diff a j)
  | Div (a, b) ->
    (* (a'b - ab') / b² *)
    div (add [ mul (diff a j) b; neg (mul a (diff b j)) ]) (pow b 2.)
  | Pow (a, p) -> mul (Const p) (mul (pow a (p -. 1.)) (diff a j))
  | Exp a -> mul (Exp a) (diff a j)
  | Log a -> div (diff a j) a

let rec vars_aux acc = function
  | Const _ -> acc
  | Var j -> j :: acc
  | Add es -> List.fold_left vars_aux acc es
  | Mul (a, b) | Div (a, b) -> vars_aux (vars_aux acc a) b
  | Neg a | Pow (a, _) | Exp a | Log a -> vars_aux acc a

let vars e = List.sort_uniq compare (vars_aux [] e)
let max_var e = match List.rev (vars e) with [] -> -1 | j :: _ -> j

let gradient e x =
  let g = Array.make (Array.length x) 0. in
  List.iter (fun j -> g.(j) <- eval (diff e j) x) (vars e);
  g

let compile_gradient e =
  let partials = List.map (fun j -> (j, diff e j)) (vars e) in
  fun x ->
    let g = Array.make (Array.length x) 0. in
    List.iter (fun (j, d) -> g.(j) <- eval d x) partials;
    g

(* --- compiled programs ---

   [eval] is a tree-walk interpreter; the AL/SPG inner loops in
   lib/nlp evaluate the same handful of expressions millions of times
   per relaxation, so the pointer-chasing and match dispatch dominate
   the solve wall.  [Compiled] lowers an expression once to a closure
   (tagless-final style): the dispatch happens at compile time, leaving
   only direct float work and indirect calls at evaluation time, with
   zero allocation per call.  Two structural fast paths cover the
   shapes the FMO allocation model actually produces:

   - a flat linear sum (every [Add] operand is [Const], [Var], or
     [Mul (Const, Var)]) evaluates as one loop over packed coefficient
     arrays — this is every assignment/SOS1 linking row;
   - scaled power terms [c * x_j ** p] (the scaling-law terms) fuse to
     a single closure.

   Bit-identity contract: compilation replays exactly the floating
   point operations of [eval], in the same order — [Add es] mirrors the
   left fold from [0.] (the leading [0. +. _] is kept: dropping it
   would flip the sign of a [-0.] sum), and [Mul (Const c, b)] computes
   [c *. eval b x] just as the interpreter does — so
   [Compiled.eval (Compiled.compile e) x] is bit-for-bit equal to
   [eval e x] on every point of sufficient length (test/test_minlp.ml
   pins this with qcheck).  Programs are immutable closures and safe to
   share across domains. *)

module Compiled = struct
  (* the expression-building operators shadow integer arithmetic above;
     restore it for arity bookkeeping *)
  let ( + ) = Stdlib.( + )

  let ( - ) = Stdlib.( - )

  type program = {
    f : float array -> float; (* unchecked body; [eval] guards arity *)
    arity : int; (* minimum point length: max var index + 1 *)
  }

  (* flat linear sums evaluate without per-term closure calls; term
     kinds: 0 = constant, 1 = bare variable, 2 = scaled variable *)
  let lin_term = function
    | Const c -> Some (0, c, -1)
    | Var j -> Some (1, 0., j)
    | Mul (Const c, Var j) -> Some (2, c, j)
    | _ -> None

  let compile_linear_sum terms =
    let n = List.length terms in
    let kind = Array.make n 0 and coef = Array.make n 0. and idx = Array.make n (-1) in
    List.iteri
      (fun k (kd, c, j) ->
        kind.(k) <- kd;
        coef.(k) <- c;
        idx.(k) <- j)
      terms;
    fun x ->
      (* mirrors [List.fold_left (fun acc e -> acc +. eval e x) 0. es] *)
      let s = ref 0. in
      for k = 0 to n - 1 do
        let kd = Array.unsafe_get kind k in
        let v =
          if kd = 0 then Array.unsafe_get coef k
          else if kd = 1 then Array.unsafe_get x (Array.unsafe_get idx k)
          else Array.unsafe_get coef k *. Array.unsafe_get x (Array.unsafe_get idx k)
        in
        s := !s +. v
      done;
      !s

  let compile e =
    let arity = ref 0 in
    let touch j =
      if j < 0 then invalid_arg "Expr.Compiled.compile: negative variable index";
      if j >= !arity then arity := j + 1
    in
    let rec go e : float array -> float =
      match e with
      | Const c -> fun _ -> c
      | Var j ->
        touch j;
        fun x -> Array.unsafe_get x j
      | Add es -> begin
        let lin =
          try Some (List.map (fun e -> match lin_term e with Some t -> t | None -> raise Exit) es)
          with Exit -> None
        in
        match lin with
        | Some terms ->
          List.iter (fun (_, _, j) -> if j >= 0 then touch j) terms;
          compile_linear_sum terms
        | None -> (
          (* mirror [List.fold_left (fun acc e -> acc +. eval e x) 0. es];
             small arities nest directly, longer sums loop over an array
             of compiled operands — both replay the same left fold *)
          match List.map go es with
          | [] -> fun _ -> 0.
          | [ fa ] -> fun x -> 0. +. fa x
          | [ fa; fb ] -> fun x -> (0. +. fa x) +. fb x
          | [ fa; fb; fc ] -> fun x -> ((0. +. fa x) +. fb x) +. fc x
          | [ fa; fb; fc; fd ] -> fun x -> (((0. +. fa x) +. fb x) +. fc x) +. fd x
          | fs ->
            let fs = Array.of_list fs in
            let n = Array.length fs in
            fun x ->
              let s = ref 0. in
              for k = 0 to n - 1 do
                s := !s +. (Array.unsafe_get fs k) x
              done;
              !s)
      end
      | Mul (Const c, Pow (Var j, p)) ->
        (* scaling-law term [c * n^p]: one closure for the whole chain *)
        touch j;
        fun x -> c *. (Array.unsafe_get x j ** p)
      | Mul (Const c, Var j) ->
        touch j;
        fun x -> c *. Array.unsafe_get x j
      | Mul (Const c, b) ->
        let fb = go b in
        fun x -> c *. fb x
      | Mul (a, Const c) ->
        let fa = go a in
        fun x -> fa x *. c
      | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun x -> fa x *. fb x
      | Neg (Var j) ->
        touch j;
        fun x -> -.Array.unsafe_get x j
      | Neg a ->
        let fa = go a in
        fun x -> -.fa x
      | Div (a, Const c) ->
        let fa = go a in
        fun x -> fa x /. c
      | Div (a, b) ->
        let fa = go a and fb = go b in
        fun x -> fa x /. fb x
      | Pow (Var j, p) ->
        touch j;
        fun x -> Array.unsafe_get x j ** p
      | Pow (a, p) ->
        let fa = go a in
        fun x -> fa x ** p
      | Exp a ->
        let fa = go a in
        fun x -> exp (fa x)
      | Log a ->
        let fa = go a in
        fun x -> log (fa x)
    in
    let f = go e in
    { f; arity = !arity }

  let arity p = p.arity

  let eval p x =
    (* [eval] raises on the first out-of-range [Var] it reaches; the
       tree walk reaches every leaf, so one upfront arity check is
       observably equivalent *)
    if p.arity > Array.length x then
      invalid_arg "Expr.eval: variable index out of range";
    p.f x

  let unsafe_fn p = p.f

  (* partials are split at compile time: constant partials (every
     variable of a linear row) are read straight from an array, dynamic
     ones go through their compiled program.  Variable indices are
     distinct ([vars] sorts and dedups), so each output entry is
     written exactly once and the const/dynamic split cannot change
     rounding. *)
  type gradient = {
    cidx : int array; (* variables with constant partial *)
    cval : float array;
    didx : int array; (* variables with expression partial *)
    dprog : program array;
    g_arity : int; (* max arity across partials, checked once per call *)
  }

  let compile_gradient e =
    let parts = List.map (fun j -> (j, diff e j)) (vars e) in
    let consts = List.filter_map (function j, Const c -> Some (j, c) | _ -> None) parts in
    let dyn =
      List.filter_map (function _, Const _ -> None | j, d -> Some (j, compile d)) parts
    in
    {
      cidx = Array.of_list (List.map fst consts);
      cval = Array.of_list (List.map snd consts);
      didx = Array.of_list (List.map fst dyn);
      dprog = Array.of_list (List.map snd dyn);
      g_arity = List.fold_left (fun a (_, p) -> Stdlib.max a p.arity) 0 dyn;
    }

  let check_g g x =
    if g.g_arity > Array.length x then
      invalid_arg "Expr.eval: variable index out of range"

  let grad_into g x out =
    check_g g x;
    Array.fill out 0 (Array.length out) 0.;
    for k = 0 to Array.length g.cidx - 1 do
      out.(Array.unsafe_get g.cidx k) <- Array.unsafe_get g.cval k
    done;
    for k = 0 to Array.length g.didx - 1 do
      out.(Array.unsafe_get g.didx k) <- (Array.unsafe_get g.dprog k).f x
    done

  let grad_acc g x w acc =
    (* accumulate [acc += w · ∇e(x)] touching only the variables that
       occur in [e]; the rounding per touched entry matches
       [Vec.axpy w grad acc], i.e. (w *. g_j) +. acc_j *)
    check_g g x;
    for k = 0 to Array.length g.cidx - 1 do
      let j = Array.unsafe_get g.cidx k in
      acc.(j) <- (w *. Array.unsafe_get g.cval k) +. acc.(j)
    done;
    for k = 0 to Array.length g.didx - 1 do
      let j = Array.unsafe_get g.didx k in
      acc.(j) <- (w *. (Array.unsafe_get g.dprog k).f x) +. acc.(j)
    done
end

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Add es -> add (List.map simplify es)
  | Mul (a, b) -> mul (simplify a) (simplify b)
  | Neg a -> neg (simplify a)
  | Div (a, b) -> div (simplify a) (simplify b)
  | Pow (a, p) -> pow (simplify a) p
  | Exp a -> exp_ (simplify a)
  | Log a -> log_ (simplify a)

let rec is_linear = function
  | Const _ | Var _ -> true
  | Add es -> List.for_all is_linear es
  | Neg a -> is_linear a
  | Mul (Const _, e) | Mul (e, Const _) -> is_linear e
  | Div (e, Const _) -> is_linear e
  | Mul _ | Div _ | Pow _ | Exp _ | Log _ -> false

let linear_parts e =
  if not (is_linear e) then invalid_arg "Expr.linear_parts: not linear";
  let tbl = Hashtbl.create 8 in
  let constant = ref 0. in
  let bump j c = Hashtbl.replace tbl j (c +. Option.value ~default:0. (Hashtbl.find_opt tbl j)) in
  let rec go mult = function
    | Const c -> constant := !constant +. (mult *. c)
    | Var j -> bump j mult
    | Add es -> List.iter (go mult) es
    | Neg a -> go (-.mult) a
    | Mul (Const c, e) | Mul (e, Const c) -> go (mult *. c) e
    | Div (e, Const c) -> go (mult /. c) e
    | Mul _ | Div _ | Pow _ | Exp _ | Log _ -> assert false
  in
  go 1. e;
  let coeffs = Hashtbl.fold (fun j c acc -> (j, c) :: acc) tbl [] in
  (List.sort compare coeffs, !constant)

let linearize e x = (eval e x, gradient e x)

let rec pp fmt = function
  | Const c -> Format.fprintf fmt "%g" c
  | Var j -> Format.fprintf fmt "x%d" j
  | Add es ->
    Format.fprintf fmt "(";
    List.iteri (fun i e -> Format.fprintf fmt (if i = 0 then "%a" else " + %a") pp e) es;
    Format.fprintf fmt ")"
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Neg a -> Format.fprintf fmt "-%a" pp a
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Pow (a, p) -> Format.fprintf fmt "%a^%g" pp a p
  | Exp a -> Format.fprintf fmt "exp(%a)" pp a
  | Log a -> Format.fprintf fmt "log(%a)" pp a

let to_string e = Format.asprintf "%a" pp e
