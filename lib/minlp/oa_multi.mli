(** Multi-tree outer approximation (Duran–Grossmann).

    The classical OA alternation, predating the single-tree LP/NLP
    variant the paper uses: repeatedly (1) solve the MILP master built
    from all accumulated linearizations to optimality — its value is a
    valid lower bound — then (2) fix the integer assignment and solve
    the NLP for the best continuous completion — a valid upper bound and
    a fresh linearization point. Terminates when the bounds meet. Each
    iteration restarts a full MILP tree, which is exactly the cost the
    LP/NLP single-tree method ({!Oa}) avoids; experiment E6 quantifies
    the difference. *)

type options = {
  max_iterations : int;  (** master/NLP alternations *)
  milp_max_nodes : int;  (** per-master budget *)
  tol_int : float;
  tol_nl : float;
  rel_gap : float;
  branch_sos_first : bool;
}

val default_options : options

type info = {
  solution : Solution.t;
  iterations : int;  (** alternations used *)
}

(** [run ?options ?budget ?tally p] — returns the solution plus the
    iteration count. [solution.stats] accumulates over all master
    solves. The armed [budget] is checked between alternations and
    threaded into every master / NLP solve; on exhaustion the best
    incumbent is returned with status [Budget_exhausted]. *)
val run :
  ?options:options ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  Problem.t ->
  info

(** The unified entry point ({!Engine.Solver_intf.S} convention):
    {!run} under default options. The iteration count is dropped — use
    {!run} when it matters. [warm_start] is accepted for signature
    uniformity and ignored (the alternation always starts from its own
    root relaxation). *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:float array ->
  ?trace:Engine.Telemetry.t ->
  Problem.t ->
  (Solution.t Engine.Solver_intf.certified, Engine.Status.t) result

