(** LP/NLP-based branch-and-bound (single-tree outer approximation).

    The algorithm the paper uses from MINOTAUR (Quesada–Grossmann /
    Fletcher–Leyffer [13]): a {e single} MILP tree is searched; whenever
    a node's LP optimum is integer feasible, the nonlinear constraints
    are checked. If violated, an NLP with the integer assignment fixed
    is solved, outer-approximation cuts are generated at its solution
    (or feasibility cuts at the LP point when the fixed NLP is
    infeasible), and the node is re-solved against the tightened
    relaxation. Convexity of the fitted performance functions
    (coefficients [a, b, d >= 0]) guarantees the cuts are globally valid,
    so the returned solution is a global optimum — the property the
    paper highlights ("guarantees to provide an optimal solution or show
    that none exists"). *)

type options = {
  max_nodes : int;
  tol_int : float;
  tol_nl : float;  (** nonlinear feasibility tolerance for accepting points *)
  rel_gap : float;
  branch_sos_first : bool;
  max_oa_rounds : int;  (** cut rounds per integer assignment (cycling guard) *)
  branching : Milp.branching;  (** master-tree variable branching rule *)
}

val default_options : options

(** [run ?options ?budget ?tally ?warm_start p] — solve a convex
    MINLP, returning the raw {!Solution.t}. Nonlinear objectives are
    epigraph-normalized internally; [x] is returned in the original
    variable space.

    The armed [budget] covers the whole run (root NLP, master tree,
    fixed-integer NLPs); on exhaustion the best incumbent is returned
    with status [Budget_exhausted]. [warm_start] is a feasible point of
    [p] in the original variable space: it primes the master tree's
    incumbent so pruning is sharp from the first node (points that fail
    the feasibility check are silently ignored). [tally] accumulates the
    full counter set, plus "presolve" / "root-nlp" / "master" phase
    timers. *)
val run :
  ?options:options ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?warm_start:float array ->
  Problem.t ->
  Solution.t

(** The unified entry point ({!Engine.Solver_intf.S} convention):
    {!run} under default options, returning the incumbent plus its
    certificate, or the failure status. Solver knobs stay on {!run}. *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:float array ->
  ?trace:Engine.Telemetry.t ->
  Problem.t ->
  (Solution.t Engine.Solver_intf.certified, Engine.Status.t) result

