(** NLP-based branch-and-bound for convex MINLPs.

    The classical algorithm (Dakin's tree search with nonlinear
    relaxations): each node solves the continuous NLP relaxation under
    the node's bounds; convexity of the model class makes the relaxation
    value a valid lower bound, so pruning is exact. Serves as the
    reference solver and as the baseline against which the LP/NLP-based
    {!Oa} solver is benchmarked (experiment E6). *)

type options = {
  max_nodes : int;
  tol_int : float;
  rel_gap : float;
  branch_sos_first : bool;
}

val default_options : options

(** [run ?options ?budget ?tally ?warm_start p] — solve the MINLP,
    returning the raw {!Solution.t}. Nonlinear objectives are handled
    by epigraph normalization internally; the returned [x] is in the
    original variable space.

    The armed [budget] is polled at the top of the node loop and inside
    every NLP relaxation solve; on exhaustion the best incumbent found
    so far is returned with status [Budget_exhausted] (empty [x] when
    none was found). [warm_start] is a feasible point of [p] in the
    original variable space: it primes the incumbent (and hence the
    pruning bound), measurably cutting node counts; infeasible points
    are silently ignored. [tally] accumulates node / NLP / incumbent
    counters. *)
val run :
  ?options:options ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?warm_start:float array ->
  Problem.t ->
  Solution.t

(** The unified entry point ({!Engine.Solver_intf.S} convention):
    {!run} under default options, returning the incumbent plus its
    certificate, or the failure status. Solver knobs stay on {!run}. *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:float array ->
  ?trace:Engine.Telemetry.t ->
  Problem.t ->
  (Solution.t Engine.Solver_intf.certified, Engine.Status.t) result

