(** Continuous relaxations of a MINLP and their solution.

    Internal plumbing for {!Bnb} and {!Oa}: drops integrality, applies
    node bounds and hands the resulting NLP to {!Nlp.Auglag} with exact
    expression gradients. *)

type nlp_result = {
  x : float array;
  obj : float;  (** objective of the original problem at [x] (problem sense) *)
  violation : float;  (** max constraint violation *)
  feasible : bool;  (** [violation] below tolerance *)
  converged : bool;
}

(** Compiled relaxation context: objective and constraint expressions
    lowered to closure programs, plus the linear-row LP skeleton, built
    once per solver run instead of once per node. The context is
    immutable (compiled programs hold no scratch state) and may be
    shared across domains, though each solver run / portfolio lane
    already builds its own. *)
type ctx

(** [context p] — compile [p]'s hot-path evaluators once. *)
val context : Problem.t -> ctx

(** [solve_nlp_ctx ctx ~lo ~hi ~start] — like {!solve_nlp} but reusing
    the compiled context; this is what the node loops call. *)
val solve_nlp_ctx :
  ?tol_feas:float ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ctx ->
  lo:float array ->
  hi:float array ->
  start:float array ->
  nlp_result

(** [solve_nlp p ~lo ~hi ~start] — solve the continuous relaxation of
    [p] restricted to the box [lo, hi]. [start] (clamped) seeds the
    solver; pass the parent node's solution for warm starts. [budget]
    and [tally] are threaded into the LP seeding and the
    augmented-Lagrangian inner loops; each AugLag attempt counts one
    [nlp_solves]. One-shot convenience equal to
    [solve_nlp_ctx (context p)]. *)
val solve_nlp :
  ?tol_feas:float ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  Problem.t ->
  lo:float array ->
  hi:float array ->
  start:float array ->
  nlp_result

(** [midpoint lo hi] — a finite starting point inside the box
    (0 / clamped 0 when a side is infinite). *)
val midpoint : float array -> float array -> float array

(** [oa_cut c x] — outer-approximation row for the nonlinear constraint
    [c] (sense [<=]) at point [x]:
    [g(x) + ∇g(x)·(x' − x) <= rhs] as an LP row over the variables of
    [c.expr]. Valid globally when [c.expr] is convex. *)
val oa_cut : Problem.constr -> float array -> Lp.Lp_problem.constr

(** [violated_nl p ?tol x] — nonlinear constraints of [p] violated at
    [x]. *)
val violated_nl : ?tol:float -> Problem.t -> float array -> Problem.constr list
