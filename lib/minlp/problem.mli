(** Mixed-integer nonlinear program representation and builder.

    The modelled class matches the paper's: linear or convex-nonlinear
    objective, linear constraints of any sense, convex nonlinear
    inequality constraints ([expr <= rhs]), integrality restrictions and
    SOS1 sets ("special ordered sets" used to encode the discrete
    allocation choices for the ocean/atmosphere components — branching
    on the set rather than on individual binaries is the paper's
    two-orders-of-magnitude speedup). *)

type var_kind = Continuous | Integer | Binary

type constr = {
  expr : Expr.t;
  sense : Lp.Lp_problem.sense;
  rhs : float;
  cname : string;
}

type t = private {
  num_vars : int;
  kinds : var_kind array;
  lo : float array;
  hi : float array;
  names : string array;
  minimize : bool;
  objective : Expr.t;
  constraints : constr list;
  sos1 : (int * float) list list;  (** each set: (variable, weight) pairs *)
}

(** Imperative model builder (AMPL-script replacement). *)
module Builder : sig
  type b

  val create : ?minimize:bool -> unit -> b

  (** [add_var b kind] — returns the new variable's index. Defaults:
      continuous bounds [(-inf, +inf)], integer [(0, +inf)], binary
      [(0, 1)]. *)
  val add_var : b -> ?name:string -> ?lo:float -> ?hi:float -> var_kind -> int

  (** [add_constr b expr sense rhs] — add [expr sense rhs]. *)
  val add_constr : b -> ?name:string -> Expr.t -> Lp.Lp_problem.sense -> float -> unit

  (** [add_sos1 b members] — at most one member variable may be nonzero.
      Weights order the set for branching. *)
  val add_sos1 : b -> (int * float) list -> unit

  val set_objective : b -> Expr.t -> unit

  (** [build b] — freeze. @raise Invalid_argument on malformed models
      (no variables, constraint indices out of range, nonlinear
      equality/[>=] constraints). *)
  val build : b -> t
end

(** [normalize p] — ensure a linear objective by epigraph reformulation
    when needed: returns [(p', k)] where the first [k] variables of [p']
    are those of [p]. When the objective is already linear, [p' == p]. *)
val normalize : t -> t * int

(** [lift_point ~orig p' x0] — lift a point of [orig] into the variable
    space of [p' = fst (normalize orig)]: appends the epigraph variable
    (set to the objective value at [x0]) when one was added. [None] when
    the dimensions match neither the original nor the normalized
    problem. Used to carry warm-start points across [normalize]. *)
val lift_point : orig:t -> t -> float array -> float array option

(** [linear_objective p] — dense cost vector.
    @raise Invalid_argument when the objective is nonlinear (normalize
    first). *)
val linear_objective : t -> float array

(** [split_constraints p] — partition into (linear rows in LP form,
    nonlinear inequality constraints). *)
val split_constraints : t -> Lp.Lp_problem.constr list * constr list

(** [with_bounds p ~lo ~hi] — replace the variable boxes (lengths and
    [lo <= hi] validated). Used by the presolve layer. *)
val with_bounds : t -> lo:float array -> hi:float array -> t

(** [linear_restriction p] — [p] with its nonlinear constraints removed
    (the OA master problem: nonlinearities enter as cut rows instead). *)
val linear_restriction : t -> t

(** [is_integral p ?tol x] — all integer/binary variables within [tol]
    of an integer. *)
val is_integral : ?tol:float -> t -> float array -> bool

(** [most_fractional p ?tol x] — index of the integer variable farthest
    from integrality, or [None] when integral. *)
val most_fractional : ?tol:float -> t -> float array -> int option

(** [violated_sos1 p ?tol x] — the first SOS1 set with two or more
    members of absolute value above [tol], or [None]. *)
val violated_sos1 : ?tol:float -> t -> float array -> (int * float) list option

(** [round_integral p x] — copy of [x] with integer variables rounded to
    the nearest integer. *)
val round_integral : t -> float array -> float array

(** [feasible ?tol p x] — all constraints, bounds, integrality and SOS1
    conditions hold. *)
val feasible : ?tol:float -> t -> float array -> bool

(** [objective_value p x]. *)
val objective_value : t -> float array -> float

val pp : Format.formatter -> t -> unit
