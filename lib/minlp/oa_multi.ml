type options = {
  max_iterations : int;
  milp_max_nodes : int;
  tol_int : float;
  tol_nl : float;
  rel_gap : float;
  branch_sos_first : bool;
}

let default_options =
  {
    max_iterations = 100;
    milp_max_nodes = 50_000;
    tol_int = 1e-6;
    tol_nl = 1e-6;
    rel_gap = 1e-6;
    branch_sos_first = true;
  }

type info = { solution : Solution.t; iterations : int }

let add_stats (a : Solution.stats) (b : Solution.stats) =
  {
    Solution.nodes = a.Solution.nodes + b.Solution.nodes;
    lp_solves = a.Solution.lp_solves + b.Solution.lp_solves;
    nlp_solves = a.Solution.nlp_solves + b.Solution.nlp_solves;
    cuts = a.Solution.cuts + b.Solution.cuts;
  }

let run ?(options = default_options) ?budget ?tally (p0 : Problem.t) =
  let p, orig_dim = Problem.normalize p0 in
  let pre = Engine.Telemetry.time tally "presolve" (fun () -> Presolve.tighten p) in
  let infeasible_solution stats =
    { Solution.status = Solution.Infeasible; x = [||]; obj = nan; bound = nan; stats }
  in
  if pre.Presolve.infeasible then
    { solution = infeasible_solution Solution.empty_stats; iterations = 0 }
  else begin
    let p = pre.Presolve.problem in
    let _, nl = Problem.split_constraints p in
    (* drop the epigraph variables and re-evaluate the objective at the
       returned point: an early-aborted inner NLP can leave the epigraph
       variable above the true objective value, and the certificate
       claims must match the witness exactly *)
    let truncate (s : Solution.t) =
      let s =
        if Array.length s.x > orig_dim then { s with x = Array.sub s.x 0 orig_dim } else s
      in
      if Solution.has_incumbent s then begin
        let obj = Problem.objective_value p0 s.Solution.x in
        let keyed = if p0.Problem.minimize then obj else -.obj in
        { s with Solution.obj; bound = Float.min s.Solution.bound keyed }
      end
      else s
    in
    let milp_options =
      {
        Milp.max_nodes = options.milp_max_nodes;
        tol_int = options.tol_int;
        rel_gap = options.rel_gap;
        branch_sos_first = options.branch_sos_first;
        depth_first = false;
        branching = Milp.Pseudocost;
      }
    in
    if nl = [] then
      { solution = truncate (Milp.run ~options:milp_options ?budget ?tally p); iterations = 1 }
    else begin
      let stats = ref Solution.empty_stats in
      let master = Problem.linear_restriction p in
      let key v = if p.minimize then v else -.v in
      (* seed cuts from the continuous relaxation *)
      stats := { !stats with Solution.nlp_solves = !stats.Solution.nlp_solves + 1 };
      let root =
        Engine.Telemetry.time tally "root-nlp" (fun () ->
            Relax.solve_nlp ?budget ?tally p ~lo:p.lo ~hi:p.hi ~start:(Relax.midpoint p.lo p.hi))
      in
      let cuts = ref (List.map (fun c -> Relax.oa_cut c root.Relax.x) nl) in
      let keep_finite rows =
        List.filter
          (fun (row : Lp.Lp_problem.constr) ->
            Float.is_finite row.Lp.Lp_problem.rhs
            && List.for_all (fun (_, a) -> Float.is_finite a) row.Lp.Lp_problem.coeffs)
          rows
      in
      cuts := keep_finite !cuts;
      let incumbent = ref None in
      let incumbent_key = ref infinity in
      let lower_bound = ref neg_infinity in
      let iterations = ref 0 in
      let finished = ref false in
      let stop_reason :
          [ `Internal of Solution.reason | `Budget of Solution.reason ] option ref =
        ref None
      in
      while (not !finished) && !iterations < options.max_iterations do
        match Engine.Budget.stopped budget with
        | Some r ->
          stop_reason := Some (`Budget (Solution.reason_of_budget r));
          finished := true
        | None ->
        incr iterations;
        let ms =
          Engine.Telemetry.time tally "master" (fun () ->
              Milp.run ~options:milp_options ~extra_rows:!cuts ?budget ?tally master)
        in
        stats :=
          add_stats !stats
            { ms.Solution.stats with Solution.cuts = List.length !cuts };
        (match ms.Solution.status with
        | Solution.Infeasible ->
          (* master infeasible: the cuts prove there is no better point *)
          finished := true
        | Solution.Unbounded -> finished := true
        | Solution.Feasible r ->
          stop_reason := Some (`Internal r);
          finished := true
        | Solution.Budget_exhausted r ->
          stop_reason := Some (`Budget r);
          finished := true
        | Solution.Optimal ->
          lower_bound := Float.max !lower_bound (key ms.Solution.obj);
          if
            !incumbent_key < infinity
            && !incumbent_key -. !lower_bound
               <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_key)
          then finished := true
          else begin
            (* fix integers, solve for the best continuous completion *)
            let lo = Array.copy p.lo and hi = Array.copy p.hi in
            Array.iteri
              (fun j kind ->
                match kind with
                | Problem.Integer | Problem.Binary ->
                  let v = Float.round ms.Solution.x.(j) in
                  lo.(j) <- v;
                  hi.(j) <- v
                | Problem.Continuous -> ())
              p.kinds;
            stats := { !stats with Solution.nlp_solves = !stats.Solution.nlp_solves + 1 };
            let r = Relax.solve_nlp ?budget ?tally p ~lo ~hi ~start:ms.Solution.x in
            if r.Relax.feasible then begin
              if key r.Relax.obj < !incumbent_key then begin
                incumbent_key := key r.Relax.obj;
                incumbent := Some (Problem.round_integral p r.Relax.x, r.Relax.obj)
              end;
              cuts := keep_finite (List.map (fun c -> Relax.oa_cut c r.Relax.x) nl) @ !cuts
            end
            else
              (* no feasible completion: cut the master point away *)
              cuts :=
                keep_finite
                  (List.map (fun c -> Relax.oa_cut c ms.Solution.x) (Relax.violated_nl ~tol:options.tol_nl p ms.Solution.x))
                @ !cuts;
            (* integer no-good is implied by the new cuts for convex
               problems; gap check happens on the next master solve *)
            if
              !incumbent_key < infinity
              && !incumbent_key -. !lower_bound
                 <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_key)
            then finished := true
          end)
      done;
      (* a budget stop can land inside an inner NLP without surfacing in
         the master's status; re-inspect (non-charging) before
         classifying, and give the stop order precedence: a solver that
         observed "stop" reports budget exhaustion, even when its last
         subproblem happened to close the gap *)
      (match !stop_reason with
      | Some (`Budget _) -> ()
      | None | Some (`Internal _) -> (
        match Engine.Budget.inspected budget with
        | Some r -> stop_reason := Some (`Budget (Solution.reason_of_budget r))
        | None -> ()));
      let solution =
        match !incumbent with
        | Some (x, obj) ->
          let status =
            match !stop_reason with
            | Some (`Budget r) -> Solution.Budget_exhausted r
            | (Some (`Internal _) | None) as sr ->
              if
                !incumbent_key -. !lower_bound
                <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_key)
              then Solution.Optimal
              else (
                match sr with
                | Some (`Internal r) -> Solution.Feasible r
                | Some (`Budget _) | None -> Solution.Feasible Solution.Round_limit)
          in
          truncate { Solution.status; x; obj; bound = !lower_bound; stats = !stats }
        | None -> (
          match !stop_reason with
          | Some (`Budget r | `Internal r) ->
            {
              Solution.status = Solution.Budget_exhausted r;
              x = [||];
              obj = nan;
              bound = !lower_bound;
              stats = !stats;
            }
          | None -> infeasible_solution !stats)
      in
      { solution; iterations = !iterations }
    end
  end


let solve ?budget ?cancel ?warm_start:_ ?trace p =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let info = run ?budget ?tally:trace p in
  Solution.to_result ~producer:"minlp.oa-multi" ?budget ~minimize:p.Problem.minimize
    ~tol:default_options.rel_gap info.solution
