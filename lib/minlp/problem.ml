type var_kind = Continuous | Integer | Binary

type constr = { expr : Expr.t; sense : Lp.Lp_problem.sense; rhs : float; cname : string }

type t = {
  num_vars : int;
  kinds : var_kind array;
  lo : float array;
  hi : float array;
  names : string array;
  minimize : bool;
  objective : Expr.t;
  constraints : constr list;
  sos1 : (int * float) list list;
}

module Builder = struct
  type var = { vname : string; vlo : float; vhi : float; vkind : var_kind }

  type b = {
    mutable vars : var list;  (* reversed *)
    mutable nvars : int;
    mutable constrs : constr list;  (* reversed *)
    mutable sos : (int * float) list list;  (* reversed *)
    mutable obj : Expr.t;
    minimize : bool;
  }

  let create ?(minimize = true) () =
    { vars = []; nvars = 0; constrs = []; sos = []; obj = Expr.const 0.; minimize }

  let add_var b ?name ?lo ?hi kind =
    let idx = b.nvars in
    let default_lo, default_hi =
      match kind with
      | Continuous -> (neg_infinity, infinity)
      | Integer -> (0., infinity)
      | Binary -> (0., 1.)
    in
    let vlo = Option.value ~default:default_lo lo in
    let vhi = Option.value ~default:default_hi hi in
    if vlo > vhi then invalid_arg "Problem.Builder.add_var: lo > hi";
    let vname = Option.value ~default:(Printf.sprintf "x%d" idx) name in
    b.vars <- { vname; vlo; vhi; vkind = kind } :: b.vars;
    b.nvars <- idx + 1;
    idx

  let add_constr b ?name expr sense rhs =
    let cname = Option.value ~default:(Printf.sprintf "c%d" (List.length b.constrs)) name in
    b.constrs <- { expr = Expr.simplify expr; sense; rhs; cname } :: b.constrs

  let add_sos1 b members =
    if members = [] then invalid_arg "Problem.Builder.add_sos1: empty set";
    b.sos <- members :: b.sos

  let set_objective b e = b.obj <- Expr.simplify e

  let build b =
    if b.nvars = 0 then invalid_arg "Problem.Builder.build: no variables";
    let vars = Array.of_list (List.rev b.vars) in
    let check_expr what e =
      if Expr.max_var e >= b.nvars then
        invalid_arg (Printf.sprintf "Problem.Builder.build: %s references unknown variable" what)
    in
    check_expr "objective" b.obj;
    List.iter
      (fun c ->
        check_expr c.cname c.expr;
        if not (Expr.is_linear c.expr) then
          match c.sense with
          | Lp.Lp_problem.Le -> ()
          | Lp.Lp_problem.Ge | Lp.Lp_problem.Eq ->
            invalid_arg
              (Printf.sprintf
                 "Problem.Builder.build: nonlinear constraint %s must have sense <= (convex form)"
                 c.cname))
      b.constrs;
    List.iter
      (List.iter (fun (j, _) ->
           if j < 0 || j >= b.nvars then
             invalid_arg "Problem.Builder.build: SOS1 member out of range"))
      b.sos;
    {
      num_vars = b.nvars;
      kinds = Array.map (fun v -> v.vkind) vars;
      lo = Array.map (fun v -> v.vlo) vars;
      hi = Array.map (fun v -> v.vhi) vars;
      names = Array.map (fun v -> v.vname) vars;
      minimize = b.minimize;
      objective = b.obj;
      constraints = List.rev b.constrs;
      sos1 = List.rev b.sos;
    }
end

let normalize p =
  if Expr.is_linear p.objective then (p, p.num_vars)
  else begin
    (* epigraph: min t s.t. obj - t <= 0 (max: obj sense flips) *)
    let t_idx = p.num_vars in
    let epi_sense, epi_expr =
      if p.minimize then (Lp.Lp_problem.Le, Expr.(p.objective - var t_idx))
      else (Lp.Lp_problem.Le, Expr.(var t_idx - p.objective))
    in
    let p' =
      {
        p with
        num_vars = p.num_vars + 1;
        kinds = Array.append p.kinds [| Continuous |];
        lo = Array.append p.lo [| neg_infinity |];
        hi = Array.append p.hi [| infinity |];
        names = Array.append p.names [| "_epigraph" |];
        objective = Expr.var t_idx;
        constraints =
          { expr = epi_expr; sense = epi_sense; rhs = 0.; cname = "_epigraph" } :: p.constraints;
      }
    in
    (p', p.num_vars)
  end

let lift_point ~orig p' x0 =
  let n = Array.length x0 in
  if n = p'.num_vars then Some (Array.copy x0)
  else if n = orig.num_vars && p'.num_vars = n + 1 then
    Some (Array.append x0 [| Expr.eval orig.objective x0 |])
  else None

let linear_objective p =
  if not (Expr.is_linear p.objective) then
    invalid_arg "Problem.linear_objective: objective is nonlinear";
  let coeffs, _ = Expr.linear_parts p.objective in
  let c = Array.make p.num_vars 0. in
  List.iter (fun (j, v) -> c.(j) <- v) coeffs;
  c

let split_constraints p =
  let lin, nl =
    List.partition (fun c -> Expr.is_linear c.expr) p.constraints
  in
  let lin_rows =
    List.map
      (fun c ->
        let coeffs, k = Expr.linear_parts c.expr in
        { Lp.Lp_problem.coeffs; sense = c.sense; rhs = c.rhs -. k })
      lin
  in
  (lin_rows, nl)

let with_bounds p ~lo ~hi =
  if Array.length lo <> p.num_vars || Array.length hi <> p.num_vars then
    invalid_arg "Problem.with_bounds: length mismatch";
  Array.iteri (fun j l -> if l > hi.(j) then invalid_arg "Problem.with_bounds: lo > hi") lo;
  { p with lo = Array.copy lo; hi = Array.copy hi }

let linear_restriction p =
  { p with constraints = List.filter (fun c -> Expr.is_linear c.expr) p.constraints }

let default_tol = 1e-6

let is_int_kind = function Integer | Binary -> true | Continuous -> false

let frac x = Float.abs (x -. Float.round x)

let is_integral ?(tol = default_tol) p x =
  let ok = ref true in
  Array.iteri (fun j k -> if is_int_kind k && frac x.(j) > tol then ok := false) p.kinds;
  !ok

let most_fractional ?(tol = default_tol) p x =
  let best = ref None and best_frac = ref tol in
  Array.iteri
    (fun j k ->
      if is_int_kind k then begin
        let f = frac x.(j) in
        if f > !best_frac then begin
          best_frac := f;
          best := Some j
        end
      end)
    p.kinds;
  !best

let violated_sos1 ?(tol = default_tol) p x =
  List.find_opt
    (fun members ->
      let nonzero = List.filter (fun (j, _) -> Float.abs x.(j) > tol) members in
      List.length nonzero >= 2)
    p.sos1

let round_integral p x =
  Array.mapi (fun j v -> if is_int_kind p.kinds.(j) then Float.round v else v) x

let feasible ?(tol = default_tol) p x =
  Array.length x = p.num_vars
  && is_integral ~tol p x
  && violated_sos1 ~tol p x = None
  && (let ok = ref true in
      for j = 0 to p.num_vars - 1 do
        if x.(j) < p.lo.(j) -. tol || x.(j) > p.hi.(j) +. tol then ok := false
      done;
      !ok)
  && List.for_all
       (fun c ->
         let v = Expr.eval c.expr x in
         let scale = 1. +. Float.abs c.rhs in
         match c.sense with
         | Lp.Lp_problem.Le -> v <= c.rhs +. (tol *. scale)
         | Lp.Lp_problem.Ge -> v >= c.rhs -. (tol *. scale)
         | Lp.Lp_problem.Eq -> Float.abs (v -. c.rhs) <= tol *. scale)
       p.constraints

let objective_value p x = Expr.eval p.objective x

let pp_kind fmt = function
  | Continuous -> Format.pp_print_string fmt "cont"
  | Integer -> Format.pp_print_string fmt "int"
  | Binary -> Format.pp_print_string fmt "bin"

let pp fmt p =
  Format.fprintf fmt "@[<v>%s %a@," (if p.minimize then "minimize" else "maximize") Expr.pp
    p.objective;
  List.iter
    (fun c ->
      let s =
        match c.sense with Lp.Lp_problem.Le -> "<=" | Lp.Lp_problem.Ge -> ">=" | Lp.Lp_problem.Eq -> "="
      in
      Format.fprintf fmt "%s: %a %s %g@," c.cname Expr.pp c.expr s c.rhs)
    p.constraints;
  for j = 0 to p.num_vars - 1 do
    Format.fprintf fmt "%s (%a) in [%g, %g]@," p.names.(j) pp_kind p.kinds.(j) p.lo.(j) p.hi.(j)
  done;
  List.iteri
    (fun i members ->
      Format.fprintf fmt "sos1 #%d: {" i;
      List.iter (fun (j, w) -> Format.fprintf fmt " %s:%g" p.names.(j) w) members;
      Format.fprintf fmt " }@,")
    p.sos1;
  Format.fprintf fmt "@]"
