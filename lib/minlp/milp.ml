type branching = Most_fractional | Pseudocost

type options = {
  max_nodes : int;
  tol_int : float;
  rel_gap : float;
  branch_sos_first : bool;
  depth_first : bool;
  branching : branching;
}

let default_options =
  {
    max_nodes = 100_000;
    tol_int = 1e-6;
    rel_gap = 1e-9;
    branch_sos_first = true;
    depth_first = false;
    branching = Pseudocost;
  }

type callback =
  float array ->
  float ->
  [ `Accept
  | `Reject of Lp.Lp_problem.constr list
  | `Reject_with_incumbent of Lp.Lp_problem.constr list * float array * float ]

(* provenance of a node: which variable/direction created it, the
   parent's LP value and the fractional part — the data pseudocost
   learning needs when the node is solved *)
type origin = { bvar : int; up : bool; parent_obj : float; frac : float }

type node = {
  nlo : float array;
  nhi : float array;
  depth : int;
  bound : float;
  origin : origin option;
}

(* split a violated SOS1 set at the weighted average of the LP point *)
let sos_split members x =
  let sorted = List.sort (fun (_, w1) (_, w2) -> compare w1 w2) members in
  let wsum = List.fold_left (fun acc (j, _) -> acc +. Float.abs x.(j)) 0. sorted in
  let wavg =
    if wsum <= 0. then 0.
    else List.fold_left (fun acc (j, w) -> acc +. (w *. Float.abs x.(j))) 0. sorted /. wsum
  in
  let s1, s2 = List.partition (fun (_, w) -> w <= wavg) sorted in
  if s1 = [] || s2 = [] then begin
    let arr = Array.of_list sorted in
    let half = Array.length arr / 2 in
    ( Array.to_list (Array.sub arr 0 (Stdlib.max 1 half)),
      Array.to_list (Array.sub arr (Stdlib.max 1 half) (Array.length arr - Stdlib.max 1 half)) )
  end
  else (s1, s2)

let run ?(options = default_options) ?(extra_rows = []) ?on_integral ?budget ?tally
    ?warm_start (p : Problem.t) =
  let lin_rows, nl = Problem.split_constraints p in
  if nl <> [] then invalid_arg "Milp.run: problem has nonlinear constraints";
  let obj = Problem.linear_objective p in
  let base_rows = lin_rows @ extra_rows in
  let cut_pool = ref [] in
  let num_cuts = ref 0 in
  let lp_solves = ref 0 in
  let nodes_processed = ref 0 in
  (* min-sense key so pruning logic is uniform *)
  let key v = if p.minimize then v else -.v in
  let incumbent = ref None in
  let incumbent_key = ref infinity in
  (* Warm start: a feasible point primes the incumbent, so pruning cuts
     off everything above its value from the first node on. An
     infeasible point is silently ignored. *)
  (match warm_start with
  | Some x0
    when Array.length x0 = p.num_vars && Problem.feasible ~tol:options.tol_int p x0 ->
    let x0 = Problem.round_integral p x0 in
    let obj0 = Problem.objective_value p x0 in
    incumbent := Some (x0, obj0);
    incumbent_key := key obj0;
    Engine.Telemetry.set_warm_start_used tally
  | Some _ | None -> ());
  (* LP template cache: rows only change when the cut pool grows, so
     rebuild the row skeleton per cut version and give each node a
     single-copy bound swap instead of the old
     make/set_objective/add_constraints/set_bounds-per-variable churn *)
  let lp_template = ref None in
  let lp_template_cuts = ref (-1) in
  let solve_lp node =
    incr lp_solves;
    let base =
      match !lp_template with
      | Some t when !lp_template_cuts = !num_cuts -> t
      | Some _ | None ->
        let lp =
          Lp.Lp_problem.make ~minimize:p.minimize ~names:p.names ~num_vars:p.num_vars ()
        in
        let lp = Lp.Lp_problem.set_objective lp obj in
        let lp = Lp.Lp_problem.add_constraints lp (base_rows @ !cut_pool) in
        lp_template := Some lp;
        lp_template_cuts := !num_cuts;
        lp
    in
    let lp = Lp.Lp_problem.with_bounds base ~lo:node.nlo ~hi:node.nhi in
    Lp.Simplex.run ?budget ?tally lp
  in
  let leq =
    if options.depth_first then fun a b -> a.depth >= b.depth
    else fun a b -> a.bound <= b.bound
  in
  let open_nodes = Ds.Heap.create ~leq in
  Ds.Heap.push open_nodes
    { nlo = Array.copy p.lo; nhi = Array.copy p.hi; depth = 0; bound = neg_infinity; origin = None };
  let unbounded = ref false in
  (* why the search stopped early, if it did: a solver-internal cap or
     the engine budget *)
  let stopped : [ `Internal of Solution.reason | `Budget of Solution.reason ] option ref =
    ref None
  in
  (* pseudocost tables: learned objective degradation per unit
     fractionality, per variable and direction *)
  let pc_sum_up = Array.make p.num_vars 0. and pc_n_up = Array.make p.num_vars 0 in
  let pc_sum_dn = Array.make p.num_vars 0. and pc_n_dn = Array.make p.num_vars 0 in
  let pc_global_avg () =
    let s = ref 0. and n = ref 0 in
    Array.iteri
      (fun j v ->
        s := !s +. v +. pc_sum_dn.(j);
        n := !n + pc_n_up.(j) + pc_n_dn.(j))
      pc_sum_up;
    if !n = 0 then 1. else Float.max 1e-6 (!s /. float_of_int !n)
  in
  let pc_estimate sums counts j =
    if counts.(j) = 0 then pc_global_avg () else Float.max 1e-9 (sums.(j) /. float_of_int counts.(j))
  in
  let learn node child_obj =
    match node.origin with
    | None -> ()
    | Some { bvar; up; parent_obj; frac } ->
      let degradation = Float.max 0. (key child_obj -. key parent_obj) in
      if up then begin
        pc_sum_up.(bvar) <- pc_sum_up.(bvar) +. (degradation /. Float.max 1e-6 (1. -. frac));
        pc_n_up.(bvar) <- pc_n_up.(bvar) + 1
      end
      else begin
        pc_sum_dn.(bvar) <- pc_sum_dn.(bvar) +. (degradation /. Float.max 1e-6 frac);
        pc_n_dn.(bvar) <- pc_n_dn.(bvar) + 1
      end
  in
  (* pick the branching variable: most-fractional, or best pseudocost
     product score over all fractional candidates *)
  let pick_branch_var x =
    match options.branching with
    | Most_fractional -> Problem.most_fractional ~tol:options.tol_int p x
    | Pseudocost ->
      let best = ref None and best_score = ref neg_infinity in
      Array.iteri
        (fun j kind ->
          match kind with
          | Problem.Integer | Problem.Binary ->
            let f = Float.abs (x.(j) -. Float.round x.(j)) in
            if f > options.tol_int then begin
              let d = pc_estimate pc_sum_dn pc_n_dn j *. f in
              let u = pc_estimate pc_sum_up pc_n_up j *. (1. -. f) in
              let score = Float.max d 1e-9 *. Float.max u 1e-9 in
              if score > !best_score then begin
                best_score := score;
                best := Some j
              end
            end
          | Problem.Continuous -> ())
        p.kinds;
      !best
  in
  let push_child node j ~lo ~hi ~x ~obj ~up =
    let nlo = Array.copy node.nlo and nhi = Array.copy node.nhi in
    nlo.(j) <- Float.max nlo.(j) lo;
    nhi.(j) <- Float.min nhi.(j) hi;
    if nlo.(j) <= nhi.(j) then begin
      let frac = x.(j) -. Float.floor x.(j) in
      Ds.Heap.push open_nodes
        {
          nlo;
          nhi;
          depth = node.depth + 1;
          bound = node.bound;
          origin = Some { bvar = j; up; parent_obj = obj; frac };
        }
    end
  in
  (* fix every member of an SOS1 subset to zero in a child node *)
  let push_sos_child node subset =
    let nlo = Array.copy node.nlo and nhi = Array.copy node.nhi in
    let feasible = ref true in
    List.iter
      (fun (j, _) ->
        if nlo.(j) > 0. || nhi.(j) < 0. then feasible := false
        else begin
          nlo.(j) <- 0.;
          nhi.(j) <- 0.
        end)
      subset;
    if !feasible then
      Ds.Heap.push open_nodes
        { nlo; nhi; depth = node.depth + 1; bound = node.bound; origin = None }
  in
  let gap_closed () =
    match Ds.Heap.peek_opt open_nodes with
    | None -> true
    | Some top ->
      (not options.depth_first)
      && !incumbent_key < infinity
      && !incumbent_key -. top.bound <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_key)
  in
  let continue_loop = ref true in
  while !continue_loop && (not !unbounded) && not (Ds.Heap.is_empty open_nodes) do
    if gap_closed () && !incumbent_key < infinity then continue_loop := false
    else
      match Engine.Budget.stopped budget with
      | Some r ->
        stopped := Some (`Budget (Solution.reason_of_budget r));
        continue_loop := false
      | None ->
    if !nodes_processed >= options.max_nodes then begin
      stopped := Some (`Internal Solution.Node_limit);
      continue_loop := false
    end
    else begin
      let node = Ds.Heap.pop open_nodes in
      if node.bound >= !incumbent_key -. (options.rel_gap *. Float.max 1. (Float.abs !incumbent_key))
      then Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_pruned 1
      else begin
        incr nodes_processed;
        (match budget with Some b -> Engine.Budget.add_nodes b 1 | None -> ());
        Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_expanded 1;
        let s = solve_lp node in
        match s.Lp.Simplex.status with
        | Lp.Simplex.Infeasible -> Engine.Telemetry.bump tally Engine.Telemetry.add_nodes_pruned 1
        | Lp.Simplex.Iteration_limit ->
          (* keep draining the heap: other nodes may still solve within
             their own pivot budget (the engine budget is checked at the
             top of the loop and stops the whole search) *)
          if !stopped = None then stopped := Some (`Internal Solution.Iter_limit)
        | Lp.Simplex.Unbounded -> if node.depth = 0 then unbounded := true
        | Lp.Simplex.Optimal ->
          learn node s.Lp.Simplex.obj;
          let k = key s.Lp.Simplex.obj in
          if k >= !incumbent_key -. (options.rel_gap *. Float.max 1. (Float.abs !incumbent_key))
          then ()
          else begin
            let x = s.Lp.Simplex.x in
            let sos_viol =
              if options.branch_sos_first then Problem.violated_sos1 ~tol:options.tol_int p x
              else None
            in
            match sos_viol with
            | Some members ->
              let s1, s2 = sos_split members x in
              let node = { node with bound = k } in
              push_sos_child node s1;
              push_sos_child node s2
            | None -> (
              match pick_branch_var x with
              | Some j ->
                let node = { node with bound = k } in
                push_child node j ~lo:neg_infinity ~hi:(Float.floor x.(j)) ~x
                  ~obj:s.Lp.Simplex.obj ~up:false;
                push_child node j ~lo:(Float.ceil x.(j)) ~hi:infinity ~x ~obj:s.Lp.Simplex.obj
                  ~up:true
              | None -> (
                (* integral; SOS1 sets may still be violated when
                   branch_sos_first is off and members are continuous —
                   branch on the set in that case *)
                match Problem.violated_sos1 ~tol:options.tol_int p x with
                | Some members ->
                  let s1, s2 = sos_split members x in
                  let node = { node with bound = k } in
                  push_sos_child node s1;
                  push_sos_child node s2
                | None -> (
                  let x = Problem.round_integral p x in
                  let verdict =
                    match on_integral with
                    | None -> `Accept
                    | Some cb -> cb x s.Lp.Simplex.obj
                  in
                  match verdict with
                  | `Accept ->
                    if k < !incumbent_key then begin
                      incumbent_key := k;
                      incumbent := Some (x, s.Lp.Simplex.obj);
                      Engine.Telemetry.bump tally Engine.Telemetry.add_incumbent_updates 1
                    end
                  | `Reject cuts ->
                    cut_pool := cuts @ !cut_pool;
                    num_cuts := !num_cuts + List.length cuts;
                    Engine.Telemetry.bump tally Engine.Telemetry.add_oa_cuts (List.length cuts);
                    (* re-open this node: its LP must now respect the cuts *)
                    Ds.Heap.push open_nodes { node with bound = k }
                  | `Reject_with_incumbent (cuts, x', obj') ->
                    cut_pool := cuts @ !cut_pool;
                    num_cuts := !num_cuts + List.length cuts;
                    Engine.Telemetry.bump tally Engine.Telemetry.add_oa_cuts (List.length cuts);
                    let k' = key obj' in
                    if k' < !incumbent_key then begin
                      incumbent_key := k';
                      incumbent := Some (Problem.round_integral p x', obj');
                      Engine.Telemetry.bump tally Engine.Telemetry.add_incumbent_updates 1
                    end;
                    Ds.Heap.push open_nodes { node with bound = k })))
          end
      end
    end
  done;
  let best_open_bound =
    Ds.Heap.fold (fun acc n -> Float.min acc n.bound) infinity open_nodes
  in
  let bound = Float.min !incumbent_key best_open_bound in
  let stats =
    { Solution.nodes = !nodes_processed; lp_solves = !lp_solves; nlp_solves = 0; cuts = !num_cuts }
  in
  if !unbounded then
    { Solution.status = Solution.Unbounded; x = [||]; obj = nan; bound = neg_infinity; stats }
  else begin
    (* a budget stop can land inside a node's LP: the aborted simplex
       reads as an iteration limit, the node's subtree is abandoned, and
       the heap can drain to empty without the top-of-loop check ever
       firing. Re-inspect the budget before classifying the result —
       without charging a poll, since this is bookkeeping, not solving —
       and let a budget stop take precedence over an internal label that
       the abort may have masqueraded under. *)
    (match !stopped with
    | Some (`Budget _) -> ()
    | None | Some (`Internal _) -> (
      match Engine.Budget.inspected budget with
      | Some r -> stopped := Some (`Budget (Solution.reason_of_budget r))
      | None -> ()));
    match !incumbent with
    | Some (x, obj) ->
      (* an iteration-limited run abandoned the aborted node's subtree,
         so an emptied heap proves nothing there: only an unstopped run
         may claim optimality (the node cap fires between whole nodes
         and always leaves the heap non-empty, so it lands in the
         Feasible arm naturally) *)
      let status =
        match !stopped with
        | Some (`Budget r) -> Solution.Budget_exhausted r
        | Some (`Internal r) -> Solution.Feasible r
        | None -> Solution.Optimal
      in
      { Solution.status; x; obj; bound; stats }
    | None ->
      let status =
        match !stopped with
        | Some (`Internal r | `Budget r) -> Solution.Budget_exhausted r
        | None -> Solution.Infeasible
      in
      { Solution.status; x = [||]; obj = nan; bound; stats }
  end


let solve ?budget ?cancel ?warm_start ?trace p =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let sol = run ?budget ?tally:trace ?warm_start p in
  Solution.to_result ~producer:"minlp.milp" ?budget ~minimize:p.Problem.minimize
    ~tol:default_options.rel_gap
    ~pruned:(match trace with Some t -> t.Engine.Telemetry.nodes_pruned | None -> 0)
    sol
