(** Algebraic expression AST with exact symbolic derivatives.

    Plays AMPL's role in the paper's toolchain: models are written as
    expressions over decision variables, and the solvers obtain exact
    gradients for NLP subproblems and for outer-approximation cuts
    [g(xk) + ∇g(xk)·(x − xk) <= 0] without finite differencing.

    Variables are identified by index into the evaluation point. *)

type t =
  | Const of float
  | Var of int
  | Add of t list
  | Mul of t * t
  | Neg of t
  | Div of t * t
  | Pow of t * float  (** [Pow (e, p)] = e^p with constant exponent *)
  | Exp of t
  | Log of t

(* Constructors (with light simplification). *)

val const : float -> t
val var : int -> t
val add : t list -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val pow : t -> float -> t
val exp_ : t -> t
val log_ : t -> t

(** [scale c e] = [c * e]. *)
val scale : float -> t -> t

(** [linear coeffs] = [Σ c_j x_j] from sparse (index, coefficient) pairs. *)
val linear : (int * float) list -> t

(** [eval e x] — value at point [x].
    @raise Invalid_argument when a variable index exceeds [x]. *)
val eval : t -> float array -> float

(** [diff e j] — symbolic partial derivative ∂e/∂x_j (simplified). *)
val diff : t -> int -> t

(** [gradient e x] — exact gradient at [x], one [diff]+[eval] per
    variable occurring in [e]; absent variables get 0. The result has
    the length of [x]. *)
val gradient : t -> float array -> float array

(** [compile_gradient e] — precompute the symbolic partials of [e] once
    and return a fast evaluator. Equivalent to [gradient e] but without
    re-deriving on every call; the NLP solvers evaluate gradients tens
    of thousands of times per relaxation. *)
val compile_gradient : t -> float array -> float array

(** Closure-compiled form of an expression.

    [compile] lowers the tree once into nested OCaml closures — all AST
    dispatch happens at compile time, and linear sums and scaling-law
    leaves ([c·x_j^p]) collapse into fused fast paths.  The resulting
    function performs exactly the floating-point operations of the
    interpreted {!eval}, in the same order ([Add] evaluates as a left
    fold from 0.), so results are bit-for-bit identical — solver
    trajectories do not change when a hot path switches to the compiled
    form.

    Compiled programs are immutable closures with no scratch state, so
    they are domain-safe: one program may be shared by every portfolio
    lane. *)
module Compiled : sig
  type program

  val compile : t -> program

  (** Minimum evaluation-point length: max variable index + 1. *)
  val arity : program -> int

  (** Bit-for-bit equal to [Expr.eval] on the source expression.
      @raise Invalid_argument when the point is shorter than [arity]. *)
  val eval : program -> float array -> float

  (** The raw compiled closure, without the arity guard of [eval].
      Callers must guarantee every evaluation point has length at least
      [arity program]; shorter points read out of bounds.  Intended for
      inner loops (the AL/SPG kernels) where the dimension is fixed at
      construction time. *)
  val unsafe_fn : program -> float array -> float

  (** Compiled symbolic gradient: one program per occurring variable. *)
  type gradient

  val compile_gradient : t -> gradient

  (** [grad_into g x out] writes the dense gradient at [x] into [out]
      (zero-filling entries for absent variables), matching
      [Expr.compile_gradient] output bit-for-bit. *)
  val grad_into : gradient -> float array -> float array -> unit

  (** [grad_acc g x w acc] accumulates [acc += w · ∇e(x)] in place,
      touching only entries for variables occurring in the expression;
      rounding per entry matches [Vec.axpy w grad acc]. *)
  val grad_acc : gradient -> float array -> float -> float array -> unit
end

(** [vars e] — sorted list of distinct variable indices in [e]. *)
val vars : t -> int list

(** [max_var e] — largest variable index, or [-1] for constants. *)
val max_var : t -> int

(** [simplify e] — constant folding and algebraic identities
    (idempotent). *)
val simplify : t -> t

(** [is_linear e] — true when [e] is affine in its variables. *)
val is_linear : t -> bool

(** [linear_parts e] — [(coeffs, constant)] when [is_linear e];
    @raise Invalid_argument otherwise. *)
val linear_parts : t -> (int * float) list * float

(** [linearize e x] — first-order Taylor data at [x]:
    [(value, gradient)]. The OA cut for [e <= ub] is
    [value + grad·(x' − x) <= ub]. *)
val linearize : t -> float array -> float * float array

val pp : Format.formatter -> t -> unit
val to_string : t -> string
