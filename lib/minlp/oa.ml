type options = {
  max_nodes : int;
  tol_int : float;
  tol_nl : float;
  rel_gap : float;
  branch_sos_first : bool;
  max_oa_rounds : int;
  branching : Milp.branching;
}

let default_options =
  {
    max_nodes = 100_000;
    tol_int = 1e-6;
    tol_nl = 1e-6;
    rel_gap = 1e-6;
    branch_sos_first = true;
    max_oa_rounds = 60;
    branching = Milp.Pseudocost;
  }

(* key integer assignments for the cycling guard *)
let assignment_key (p : Problem.t) x =
  let b = Buffer.create 64 in
  Array.iteri
    (fun j k ->
      match k with
      | Problem.Integer | Problem.Binary ->
        Buffer.add_string b (string_of_int (int_of_float (Float.round x.(j))));
        Buffer.add_char b ','
      | Problem.Continuous -> ())
    p.kinds;
  Buffer.contents b

let run ?(options = default_options) ?budget ?tally ?warm_start (p0 : Problem.t) =
  let p, orig_dim = Problem.normalize p0 in
  (* feasibility-based bound tightening shrinks the tree and the
     relaxation boxes; its infeasibility verdict is sound (pure
     interval arithmetic over the linear rows) *)
  let pre = Engine.Telemetry.time tally "presolve" (fun () -> Presolve.tighten p) in
  if pre.Presolve.infeasible then
    {
      Solution.status = Solution.Infeasible;
      x = [||];
      obj = nan;
      bound = nan;
      stats = Solution.empty_stats;
    }
  else begin
  let p = pre.Presolve.problem in
  (* warm start lifted through the epigraph normalization; it is passed
     to the master MILP, which validates it against its own rows (the
     master relaxes the nonlinear constraints, so any point feasible for
     [p] is feasible for it, and its objective value is a true upper
     bound for pruning) *)
  let warm =
    match warm_start with
    | None -> None
    | Some x0 -> (
      match Problem.lift_point ~orig:p0 p x0 with
      | Some w when Problem.feasible ~tol:options.tol_int p w -> Some w
      | Some _ | None -> None)
  in
  let _, nl = Problem.split_constraints p in
  (* drop the epigraph variables and re-evaluate the objective at the
     returned point: an early-aborted inner NLP can leave the epigraph
     variable above the true objective value, and the certificate claims
     must match the witness exactly *)
  let truncate (s : Solution.t) =
    let s =
      if Array.length s.x > orig_dim then { s with x = Array.sub s.x 0 orig_dim } else s
    in
    if Solution.has_incumbent s then begin
      let obj = Problem.objective_value p0 s.Solution.x in
      let keyed = if p0.Problem.minimize then obj else -.obj in
      { s with Solution.obj; bound = Float.min s.Solution.bound keyed }
    end
    else s
  in
  let milp_options =
    {
      Milp.max_nodes = options.max_nodes;
      tol_int = options.tol_int;
      rel_gap = options.rel_gap;
      branch_sos_first = options.branch_sos_first;
      depth_first = false;
      branching = options.branching;
    }
  in
  if nl = [] then
    truncate (Milp.run ~options:milp_options ?budget ?tally ?warm_start:warm p)
  else begin
    let nlp_solves = ref 0 in
    (* one compiled relaxation context for the root solve and every
       fixed-integer completion the master requests *)
    let rctx = Relax.context p in
    (* root relaxation seeds the initial linearization *)
    incr nlp_solves;
    let root =
      Engine.Telemetry.time tally "root-nlp" (fun () ->
          Relax.solve_nlp_ctx ?budget ?tally rctx ~lo:p.lo ~hi:p.hi
            ~start:(Relax.midpoint p.lo p.hi))
    in
    (* a failed root NLP is not proof of infeasibility (the augmented
       Lagrangian is a local method): linearize at the best point it
       reached — OA cuts are globally valid for convex constraints at
       any point — and let the master tree decide feasibility *)
    begin
      let cut_point = root.Relax.x in
      let initial_cuts =
        List.filter_map
          (fun c ->
            let row = Relax.oa_cut c cut_point in
            let finite =
              Float.is_finite row.Lp.Lp_problem.rhs
              && List.for_all (fun (_, a) -> Float.is_finite a) row.Lp.Lp_problem.coeffs
            in
            if finite then Some row else None)
          nl
      in
      let rounds : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let fix_integers x =
        let lo = Array.copy p.lo and hi = Array.copy p.hi in
        Array.iteri
          (fun j k ->
            match k with
            | Problem.Integer | Problem.Binary ->
              let v = Float.round x.(j) in
              lo.(j) <- v;
              hi.(j) <- v
            | Problem.Continuous -> ())
          p.kinds;
        (lo, hi)
      in
      let on_integral x _obj =
        let violated = Relax.violated_nl ~tol:options.tol_nl p x in
        if violated = [] then `Accept
        else begin
          let akey = assignment_key p x in
          let seen = Option.value ~default:0 (Hashtbl.find_opt rounds akey) in
          Hashtbl.replace rounds akey (seen + 1);
          if seen >= options.max_oa_rounds then
            (* cycling guard: keep cutting at the LP point, which moves
               every round as earlier cuts tighten the relaxation *)
            `Reject (List.map (fun c -> Relax.oa_cut c x) violated)
          else begin
            (* fixed-integer NLP: best continuous completion of x *)
            incr nlp_solves;
            let lo, hi = fix_integers x in
            let r = Relax.solve_nlp_ctx ?budget ?tally rctx ~lo ~hi ~start:x in
            if r.Relax.feasible then
              let cuts = List.map (fun c -> Relax.oa_cut c r.Relax.x) nl in
              `Reject_with_incumbent (cuts, r.Relax.x, r.Relax.obj)
            else
              (* integer assignment has no feasible completion:
                 feasibility cuts at the LP point *)
              `Reject (List.map (fun c -> Relax.oa_cut c x) violated)
          end
        end
      in
      let master = Problem.linear_restriction p in
      let s =
        Engine.Telemetry.time tally "master" (fun () ->
            Milp.run ~options:milp_options ~extra_rows:initial_cuts ~on_integral ?budget
              ?tally ?warm_start:warm master)
      in
      let stats = { s.Solution.stats with nlp_solves = !nlp_solves } in
      truncate { s with Solution.stats }
    end
  end
  end


let solve ?budget ?cancel ?warm_start ?trace p =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let sol = run ?budget ?tally:trace ?warm_start p in
  Solution.to_result ~producer:"minlp.oa" ?budget ~minimize:p.Problem.minimize
    ~tol:default_options.rel_gap
    ~pruned:(match trace with Some t -> t.Engine.Telemetry.nodes_pruned | None -> 0)
    sol
