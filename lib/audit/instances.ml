let generate ~seed =
  let rng = Numerics.Rng.create seed in
  let k = 2 + Numerics.Rng.int rng 3 in
  let total = (3 * k) + Numerics.Rng.int rng (4 * k) in
  let b = Minlp.Problem.Builder.create () in
  let vars =
    List.init k (fun i ->
        Minlp.Problem.Builder.add_var b
          ~name:(Printf.sprintf "n%d" i)
          ~lo:1. ~hi:(float_of_int total) Minlp.Problem.Integer)
  in
  let terms =
    List.map
      (fun v ->
        let a = Numerics.Rng.uniform rng ~lo:20. ~hi:120. in
        let c = Numerics.Rng.uniform rng ~lo:0.6 ~hi:1.2 in
        let lin = Numerics.Rng.uniform rng ~lo:0.02 ~hi:0.3 in
        Minlp.Expr.add
          [
            Minlp.Expr.div (Minlp.Expr.const a) (Minlp.Expr.pow (Minlp.Expr.var v) c);
            Minlp.Expr.mul (Minlp.Expr.const lin) (Minlp.Expr.var v);
          ])
      vars
  in
  Minlp.Problem.Builder.set_objective b (Minlp.Expr.add terms);
  Minlp.Problem.Builder.add_constr b ~name:"pool"
    (Minlp.Expr.add (List.map Minlp.Expr.var vars))
    Lp.Lp_problem.Le (float_of_int total);
  (if seed land 1 = 1 && k >= 2 then
     match vars with
     | v0 :: v1 :: _ ->
       Minlp.Problem.Builder.add_constr b ~name:"pair-floor"
         (Minlp.Expr.add [ Minlp.Expr.var v0; Minlp.Expr.var v1 ])
         Lp.Lp_problem.Ge 3.
     | _ -> ());
  Minlp.Problem.Builder.build b
