(** Seeded generator of small convex MINLP instances for the stress
    harness: allocation-shaped models (the paper's form) — [k] task
    classes, an integer node count per class with per-class cost
    [a/n^c + b·n], and a shared node pool. Small enough that all three
    MINLP solvers prove optimality in milliseconds, which is what the
    differential check needs. *)

(** [generate ~seed] — deterministic in [seed]. Between 2 and 4 integer
    variables, convex nonlinear objective, one linear pool constraint
    (plus, for odd seeds, a lower bound on a pairwise sum so the pool
    is not the only binding row). *)
val generate : seed:int -> Minlp.Problem.t
