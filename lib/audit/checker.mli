(** The independent certificate checker.

    [check_*] re-verifies a solver's {!Engine.Certificate.t} against the
    {e raw model} — walking the model's own constraint expressions,
    bounds, integrality and SOS1 sets — never against solver internals.
    A solver bug therefore cannot vouch for itself: the only shared code
    between producer and checker is the model representation and
    lib/numerics.

    What is checkable without re-solving: that the witness is feasible,
    that the claimed objective matches the model at the witness, that
    the claimed bound does not contradict the incumbent, and that the
    claimed gap evidence is internally consistent (a closed gap really
    is closed under the certificate's own tolerance; an exhausted cover
    really has no open branches). The {e validity} of the relaxation
    bound itself is not re-derivable from a feasibility witness — the
    fault-injection stress harness ({!Stress}) covers that side by
    construction. *)

(** One reason a certificate was rejected. *)
type violation =
  | Missing_witness  (** the claimed status requires a witness *)
  | Witness_dimension of { expected : int; got : int }
  | Bound_violated of { var : int; value : float; lo : float; hi : float }
  | Constraint_violated of { name : string; violation : float }
  | Not_integral of { var : int; value : float }
  | Sos1_violated of { nonzero : int }
      (** an SOS1 set with more than one nonzero member *)
  | Objective_mismatch of { claimed : float; actual : float }
  | Bound_above_incumbent of { bound : float; incumbent : float }
      (** min-sense: a lower bound claimed above the incumbent's value *)
  | Gap_open of { gap : float; allowed : float }
      (** [Gap_closed] evidence whose own numbers leave the gap open *)
  | Open_branches of int
      (** [Cover_exhausted] evidence admitting unexplored branches *)
  | Evidence_mismatch of string
      (** evidence constructor inconsistent with the claimed status *)

val violation_to_string : violation -> string

type verdict = (unit, violation list) result

(** "ok", or the "; "-joined violation list. *)
val summary : verdict -> string

(** [check_minlp ?tol p cert] — verify [cert] against MINLP model [p]
    (in the {e original} variable space, as certificates are emitted).
    [tol] is the checker's own feasibility slack (default [1e-5],
    relative where the quantity has a scale). *)
val check_minlp : ?tol:float -> Minlp.Problem.t -> Engine.Certificate.t -> verdict

(** [check_lp ?tol p cert] — verify [cert] against LP model [p]. *)
val check_lp : ?tol:float -> Lp.Lp_problem.t -> Engine.Certificate.t -> verdict

(** [check_nlp ?tol p cert] — verify [cert] against NLP model [p]
    (box bounds and [g <= 0] / [h = 0] constraints). *)
val check_nlp : ?tol:float -> Nlp.Nlp_problem.t -> Engine.Certificate.t -> verdict
