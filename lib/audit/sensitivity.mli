(** ε-reoptimality certificates for incremental re-solve.

    After the fitted coefficients drift, the serve layer must decide
    whether the incumbent allocation is still worth keeping or the
    MINLP must run again. This module answers that with a cheap,
    solver-free bound: the continuous min-max relaxation of the
    allocation problem — drop integrality and any [allowed]-list
    restriction, keep the box [\[n_min, n_max\]] and the node budget —
    whose optimum [L] is a valid lower bound on every integer-feasible
    makespan under the {e new} laws. If the incumbent's makespan [U]
    under the new laws satisfies [(U − L)/L <= ε], re-solving cannot
    improve by more than a factor [1 + ε] and the MINLP is skipped.

    [L] is found by bisection on the makespan target [T]: a target is
    feasible iff the per-class minimum node counts achieving it fit the
    budget, [Σ_c count_c · xmin_c(T) <= n_total], where [xmin_c(T)] is
    the smallest [x] in the class box with [T_c(x) <= T] (each [T_c] is
    convex, so its sublevel sets are intervals). *)

type cls = {
  law : Scaling_law.t;  (** per-task time under the {e new} fit *)
  count : int;  (** simultaneous tasks of this class *)
  n_min : int;
  n_max : int;
  allowed : int list option;
      (** restriction the incumbent must respect; the relaxation
          ignores it (still a valid lower bound) *)
}

type certificate = {
  incumbent_obj : float;  (** incumbent makespan under the new laws *)
  relaxation_bound : float;  (** continuous min-max lower bound [L] *)
  gap_rel : float;  (** [(U − L) / max L 1e-12] *)
  eps : float;  (** threshold the gap was tested against *)
}

type verdict =
  | Certified of certificate
      (** incumbent within [ε] of the relaxation bound: skip the MINLP *)
  | Rejected of { certificate : certificate option; reason : string }
      (** must re-solve (gap too large), or the incumbent is no longer
          feasible / well-formed — [certificate] is [None] in the
          latter cases *)

(** [relaxation_bound ~n_total clss] — the continuous min-max lower
    bound [L] over the box relaxation, [infinity] when even the
    per-class minima overflow the budget.
    @raise Invalid_argument on an empty class list, non-positive
    [count]/[n_min], or [n_min > n_max]. *)
val relaxation_bound : n_total:int -> cls list -> float

(** [check ?eps ~n_total ~incumbent clss] — certify or reject the
    incumbent allocation (one node count per class, same order as
    [clss]; default [eps] 0.05). Rejects without a certificate when the
    incumbent violates a class box, an [allowed] list, or the node
    budget.
    @raise Invalid_argument when lengths differ or the class list is
    invalid per {!relaxation_bound}. *)
val check : ?eps:float -> n_total:int -> incumbent:int array -> cls list -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
