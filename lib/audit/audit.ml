(** Independent solution auditing: re-verify solver certificates from
    the raw model ({!Checker}, included below as [Audit.check_*]), and
    hunt unsound claims with deterministic fault injection
    ({!Stress}). See docs/AUDIT.md. *)

include Checker
module Instances = Instances
module Stress = Stress
module Sensitivity = Sensitivity
