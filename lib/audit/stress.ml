type outcome = {
  trials : int;
  optimal_claims : int;
  cert_failures : int;
  soundness_violations : int;
  differential_runs : int;
  differential_failures : int;
  failures : string list;
}

let clean o =
  o.cert_failures = 0 && o.soundness_violations = 0 && o.differential_failures = 0

let pp fmt o =
  Format.fprintf fmt
    "%d trials: %d optimal claims, %d certificate failures, %d soundness violations, %d \
     differential failures in %d runs"
    o.trials o.optimal_claims o.cert_failures o.soundness_violations
    o.differential_failures o.differential_runs

let solver_name = function
  | `Bnb -> "minlp.bnb"
  | `Oa -> "minlp.oa"
  | `Oa_multi -> "minlp.oa-multi"

let solve_with solver ?budget p =
  match solver with
  | `Bnb -> Minlp.Bnb.solve ?budget p
  | `Oa -> Minlp.Oa.solve ?budget p
  | `Oa_multi -> Minlp.Oa_multi.solve ?budget p

let run ?(log = fun _ -> ()) ?(differential_every = 10) ?(differential_rtol = 0.01) ~seed
    ~trials () =
  let rng = Numerics.Rng.create seed in
  let optimal_claims = ref 0 in
  let cert_failures = ref 0 in
  let soundness_violations = ref 0 in
  let differential_runs = ref 0 in
  let differential_failures = ref 0 in
  let failures = ref [] in
  let fail line =
    failures := line :: !failures;
    log line
  in
  for i = 0 to trials - 1 do
    let tseed = Numerics.Rng.int rng 1_000_000_000 in
    let p = Instances.generate ~seed:tseed in
    let solver = match i mod 3 with 0 -> `Bnb | 1 -> `Oa | _ -> `Oa_multi in
    let fuse_at = 1 + Numerics.Rng.int rng 500 in
    let fuse_reason =
      match Numerics.Rng.int rng 4 with
      | 0 -> Engine.Budget.Deadline
      | 1 -> Engine.Budget.Cancelled
      | 2 -> Engine.Budget.Node_limit
      | _ -> Engine.Budget.Iter_limit
    in
    let budget =
      Engine.Budget.arm (Engine.Budget.make ~poll_fuse:(fuse_at, fuse_reason) ())
    in
    let result = solve_with solver ~budget p in
    let tripped = Engine.Budget.fuse_tripped budget in
    (match result with
    | Ok { Engine.Solver_intf.value = _; cert } ->
      let claimed_optimal = cert.Engine.Certificate.claimed_status = Engine.Status.Optimal in
      if claimed_optimal then incr optimal_claims;
      (* the exact check: the fuse trips AT a poll the solver made, so a
         tripped fuse means the solver saw a stop order — claiming a
         proven optimum afterwards is unsound, full stop *)
      if tripped && claimed_optimal then begin
        incr soundness_violations;
        fail
          (Printf.sprintf
             "trial %d (%s, seed %d): optimal claimed although the budget fuse tripped at \
              poll %d"
             i (solver_name solver) tseed fuse_at)
      end;
      (match Checker.check_minlp p cert with
      | Ok () -> ()
      | Error _ as verdict ->
        incr cert_failures;
        fail
          (Printf.sprintf "trial %d (%s, seed %d): certificate rejected: %s" i
             (solver_name solver) tseed (Checker.summary verdict)))
    | Error status ->
      (* an empty-handed stop is always sound; claiming Optimal through
         the Error arm is impossible by type, but a final Infeasible /
         Unbounded verdict after a tripped fuse is the same bug class *)
      if tripped && Engine.Status.is_final status then begin
        incr soundness_violations;
        fail
          (Printf.sprintf
             "trial %d (%s, seed %d): final status %s claimed although the budget fuse \
              tripped at poll %d"
             i (solver_name solver) tseed
             (Engine.Status.to_string status)
             fuse_at)
      end);
    (* cross-solver differential on unlimited budgets *)
    if i mod differential_every = 0 then begin
      incr differential_runs;
      let proved =
        List.filter_map
          (fun solver ->
            match solve_with solver p with
            | Ok { Engine.Solver_intf.value = _; cert } ->
              (match Checker.check_minlp p cert with
              | Ok () -> ()
              | Error _ as verdict ->
                incr cert_failures;
                fail
                  (Printf.sprintf
                     "trial %d differential (%s, seed %d): certificate rejected: %s" i
                     (solver_name solver) tseed (Checker.summary verdict)));
              if cert.Engine.Certificate.claimed_status = Engine.Status.Optimal then
                Some (solver_name solver, cert.Engine.Certificate.claimed_obj)
              else None
            | Error _ -> None)
          [ `Bnb; `Oa; `Oa_multi ]
      in
      match proved with
      | [] | [ _ ] -> ()
      | (name0, obj0) :: rest ->
        List.iter
          (fun (name, obj) ->
            if Float.abs (obj -. obj0) > differential_rtol *. (1. +. Float.abs obj0)
            then begin
              incr differential_failures;
              fail
                (Printf.sprintf
                   "trial %d (seed %d): proven optima disagree: %s=%.8g vs %s=%.8g" i
                   tseed name0 obj0 name obj)
            end)
          rest
    end
  done;
  {
    trials;
    optimal_claims = !optimal_claims;
    cert_failures = !cert_failures;
    soundness_violations = !soundness_violations;
    differential_runs = !differential_runs;
    differential_failures = !differential_failures;
    failures = List.rev !failures;
  }
