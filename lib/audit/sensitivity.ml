type cls = {
  law : Scaling_law.t;
  count : int;
  n_min : int;
  n_max : int;
  allowed : int list option;
}

type certificate = {
  incumbent_obj : float;
  relaxation_bound : float;
  gap_rel : float;
  eps : float;
}

type verdict =
  | Certified of certificate
  | Rejected of { certificate : certificate option; reason : string }

let validate_classes clss =
  if clss = [] then invalid_arg "Audit.Sensitivity: empty class list";
  List.iteri
    (fun i c ->
      if c.count < 1 then
        invalid_arg (Printf.sprintf "Audit.Sensitivity: class %d has count %d < 1" i c.count);
      if c.n_min < 1 then
        invalid_arg (Printf.sprintf "Audit.Sensitivity: class %d has n_min %d < 1" i c.n_min);
      if c.n_min > c.n_max then
        invalid_arg
          (Printf.sprintf "Audit.Sensitivity: class %d has n_min %d > n_max %d" i c.n_min
             c.n_max))
    clss

(* the real-valued minimizer of T_c on [n_min, n_max]; T_c is convex,
   so everything left of it is the decreasing branch *)
let argmin_of c =
  let lo = float_of_int c.n_min and hi = float_of_int c.n_max in
  Float.max lo (Float.min hi (Scaling_law.optimal_nodes c.law ~max_nodes:hi))

(* smallest x in [n_min, xstar] with T_c(x) <= target, or None when
   even the minimum misses the target; bisection on the decreasing
   branch of the convex curve *)
let xmin_for c xstar target =
  let lo = float_of_int c.n_min in
  if Scaling_law.eval c.law lo <= target then Some lo
  else if Scaling_law.eval c.law xstar > target then None
  else begin
    let a = ref lo and b = ref xstar in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!a +. !b) in
      if Scaling_law.eval c.law mid <= target then b := mid else a := mid
    done;
    Some !b
  end

let relaxation_bound ~n_total clss =
  validate_classes clss;
  let with_star = List.map (fun c -> (c, argmin_of c)) clss in
  (* below t_lo some class cannot reach the target at any size *)
  let t_lo =
    List.fold_left
      (fun acc (c, xstar) -> Float.max acc (Scaling_law.eval c.law xstar))
      neg_infinity with_star
  in
  (* at t_hi every class is satisfied at its smallest size *)
  let t_hi =
    List.fold_left
      (fun acc (c, _) -> Float.max acc (Scaling_law.eval c.law (float_of_int c.n_min)))
      neg_infinity with_star
  in
  let feasible target =
    let need =
      List.fold_left
        (fun acc (c, xstar) ->
          match xmin_for c xstar target with
          | None -> infinity
          | Some x -> acc +. (float_of_int c.count *. x))
        0. with_star
    in
    need <= float_of_int n_total +. 1e-9
  in
  if not (feasible t_hi) then infinity
  else if feasible t_lo then t_lo
  else begin
    let a = ref t_lo and b = ref t_hi in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!a +. !b) in
      if feasible mid then b := mid else a := mid
    done;
    (* the infeasible end: no integer-feasible allocation beats it *)
    !a
  end

let check ?(eps = 0.05) ~n_total ~incumbent clss =
  if eps < 0. then invalid_arg "Audit.Sensitivity.check: eps must be >= 0";
  validate_classes clss;
  let k = List.length clss in
  if Array.length incumbent <> k then
    invalid_arg
      (Printf.sprintf "Audit.Sensitivity.check: incumbent has %d entries for %d classes"
         (Array.length incumbent) k);
  let violation = ref None in
  List.iteri
    (fun i c ->
      if !violation = None then begin
        let x = incumbent.(i) in
        if x < c.n_min || x > c.n_max then
          violation :=
            Some
              (Printf.sprintf "incumbent class %d uses %d nodes outside [%d, %d]" i x c.n_min
                 c.n_max)
        else
          match c.allowed with
          | Some l when not (List.mem x l) ->
            violation :=
              Some (Printf.sprintf "incumbent class %d uses %d nodes not in allowed list" i x)
          | _ -> ()
      end)
    clss;
  let used =
    List.fold_left (fun (acc, i) c -> (acc + (c.count * incumbent.(i)), i + 1)) (0, 0) clss
    |> fst
  in
  if !violation = None && used > n_total then
    violation := Some (Printf.sprintf "incumbent uses %d nodes, budget is %d" used n_total);
  match !violation with
  | Some reason -> Rejected { certificate = None; reason }
  | None ->
    let incumbent_obj =
      List.fold_left
        (fun (acc, i) c ->
          (Float.max acc (Scaling_law.eval c.law (float_of_int incumbent.(i))), i + 1))
        (neg_infinity, 0) clss
      |> fst
    in
    let bound = relaxation_bound ~n_total clss in
    let gap_rel = (incumbent_obj -. bound) /. Float.max bound 1e-12 in
    let certificate = { incumbent_obj; relaxation_bound = bound; gap_rel; eps } in
    if gap_rel <= eps then Certified certificate
    else
      Rejected
        {
          certificate = Some certificate;
          reason =
            Printf.sprintf "gap %.4f exceeds eps %.4f (incumbent %.6f vs bound %.6f)" gap_rel
              eps incumbent_obj bound;
        }

let pp_verdict fmt = function
  | Certified c ->
    Format.fprintf fmt "certified: incumbent %.6f within %.2f%% of bound %.6f (gap %.4f)"
      c.incumbent_obj (100. *. c.eps) c.relaxation_bound c.gap_rel
  | Rejected { reason; _ } -> Format.fprintf fmt "rejected: %s" reason
