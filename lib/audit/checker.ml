type violation =
  | Missing_witness
  | Witness_dimension of { expected : int; got : int }
  | Bound_violated of { var : int; value : float; lo : float; hi : float }
  | Constraint_violated of { name : string; violation : float }
  | Not_integral of { var : int; value : float }
  | Sos1_violated of { nonzero : int }
  | Objective_mismatch of { claimed : float; actual : float }
  | Bound_above_incumbent of { bound : float; incumbent : float }
  | Gap_open of { gap : float; allowed : float }
  | Open_branches of int
  | Evidence_mismatch of string

let violation_to_string = function
  | Missing_witness -> "claimed status requires a witness, none attached"
  | Witness_dimension { expected; got } ->
    Printf.sprintf "witness has %d variables, model has %d" got expected
  | Bound_violated { var; value; lo; hi } ->
    Printf.sprintf "x.(%d) = %g outside [%g, %g]" var value lo hi
  | Constraint_violated { name; violation } ->
    Printf.sprintf "constraint %s violated by %g" name violation
  | Not_integral { var; value } -> Printf.sprintf "x.(%d) = %g not integral" var value
  | Sos1_violated { nonzero } -> Printf.sprintf "SOS1 set with %d nonzero members" nonzero
  | Objective_mismatch { claimed; actual } ->
    Printf.sprintf "claimed objective %g, model evaluates %g" claimed actual
  | Bound_above_incumbent { bound; incumbent } ->
    Printf.sprintf "claimed bound %g above incumbent value %g" bound incumbent
  | Gap_open { gap; allowed } ->
    Printf.sprintf "gap-closed evidence leaves gap %g > allowed %g" gap allowed
  | Open_branches n -> Printf.sprintf "cover-exhausted evidence admits %d open branches" n
  | Evidence_mismatch s -> s

type verdict = (unit, violation list) result

let summary = function
  | Ok () -> "ok"
  | Error vs -> String.concat "; " (List.map violation_to_string vs)

let rel v = 1. +. Float.abs v

(* Claim checking shared by the three model classes: the model enters
   only through its dimension, a witness-feasibility walk and an
   objective evaluator, so the status/evidence logic is audited once. *)
let check_gen ~tol ~dim ~witness_violations ~objective (cert : Engine.Certificate.t) =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  (match cert.Engine.Certificate.witness with
  | None -> (
    match cert.claimed_status with
    | Engine.Status.Optimal | Engine.Status.Feasible _ -> add Missing_witness
    | Engine.Status.Infeasible | Engine.Status.Unbounded | Engine.Status.Budget_exhausted _
      -> ())
  | Some x ->
    if Array.length x <> dim then
      add (Witness_dimension { expected = dim; got = Array.length x })
    else begin
      List.iter add (witness_violations x);
      let actual = objective x in
      if Float.abs (actual -. cert.claimed_obj) > tol *. rel actual then
        add (Objective_mismatch { claimed = cert.claimed_obj; actual });
      let key = Engine.Certificate.key cert cert.claimed_obj in
      if Float.is_finite cert.claimed_bound && cert.claimed_bound > key +. (tol *. rel key)
      then add (Bound_above_incumbent { bound = cert.claimed_bound; incumbent = key })
    end);
  (match cert.claimed_status with
  | Engine.Status.Optimal -> (
    match cert.evidence with
    | Engine.Certificate.Gap_closed ->
      if not (Float.is_finite cert.claimed_bound) then
        add (Evidence_mismatch "gap-closed evidence without a finite bound")
      else
        let key = Engine.Certificate.key cert cert.claimed_obj in
        let allowed = (cert.tol +. tol) *. rel key in
        let gap = key -. cert.claimed_bound in
        if gap > allowed then add (Gap_open { gap; allowed })
    | Engine.Certificate.Cover_exhausted c ->
      if c.open_branches > 0 then add (Open_branches c.open_branches);
      if c.explored < 1 then add (Evidence_mismatch "cover-exhausted with an empty cover")
    | Engine.Certificate.Exact_method _ -> ()
    | Engine.Certificate.Incumbent_only ->
      add (Evidence_mismatch "optimal claimed on incumbent-only evidence")
    | Engine.Certificate.No_witness ->
      add (Evidence_mismatch "optimal claimed on no-witness evidence"))
  | Engine.Status.Infeasible | Engine.Status.Unbounded -> (
    match cert.evidence with
    | Engine.Certificate.No_witness -> ()
    | Engine.Certificate.Gap_closed | Engine.Certificate.Cover_exhausted _
    | Engine.Certificate.Exact_method _ | Engine.Certificate.Incumbent_only ->
      add (Evidence_mismatch "empty-handed final status must carry no-witness evidence"))
  | Engine.Status.Feasible _ | Engine.Status.Budget_exhausted _ -> ());
  match List.rev !acc with [] -> Ok () | vs -> Error vs

let minlp_witness_violations ~tol (p : Minlp.Problem.t) x =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  for j = 0 to p.num_vars - 1 do
    let v = x.(j) in
    let slack = tol *. rel v in
    if v < p.lo.(j) -. slack || v > p.hi.(j) +. slack then
      add (Bound_violated { var = j; value = v; lo = p.lo.(j); hi = p.hi.(j) });
    match p.kinds.(j) with
    | Minlp.Problem.Integer | Minlp.Problem.Binary ->
      if Float.abs (v -. Float.round v) > tol *. rel v then
        add (Not_integral { var = j; value = v })
    | Minlp.Problem.Continuous -> ()
  done;
  List.iter
    (fun (c : Minlp.Problem.constr) ->
      let lhs = Minlp.Expr.eval c.expr x in
      let viol =
        match c.sense with
        | Lp.Lp_problem.Le -> lhs -. c.rhs
        | Lp.Lp_problem.Ge -> c.rhs -. lhs
        | Lp.Lp_problem.Eq -> Float.abs (lhs -. c.rhs)
      in
      if viol > tol *. rel c.rhs then
        add (Constraint_violated { name = c.cname; violation = viol }))
    p.constraints;
  List.iter
    (fun members ->
      let nonzero =
        List.length (List.filter (fun (j, _) -> Float.abs x.(j) > tol) members)
      in
      if nonzero > 1 then add (Sos1_violated { nonzero }))
    p.sos1;
  List.rev !acc

let check_minlp ?(tol = 1e-5) (p : Minlp.Problem.t) cert =
  check_gen ~tol ~dim:p.num_vars
    ~witness_violations:(minlp_witness_violations ~tol p)
    ~objective:(Minlp.Problem.objective_value p) cert

let lp_witness_violations ~tol (p : Lp.Lp_problem.t) x =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  for j = 0 to p.num_vars - 1 do
    let v = x.(j) in
    let slack = tol *. rel v in
    if v < p.lower.(j) -. slack || v > p.upper.(j) +. slack then
      add (Bound_violated { var = j; value = v; lo = p.lower.(j); hi = p.upper.(j) })
  done;
  Array.iteri
    (fun i (row : Lp.Lp_problem.constr) ->
      let lhs = Lp.Lp_problem.eval_constraint row x in
      let viol =
        match row.sense with
        | Lp.Lp_problem.Le -> lhs -. row.rhs
        | Lp.Lp_problem.Ge -> row.rhs -. lhs
        | Lp.Lp_problem.Eq -> Float.abs (lhs -. row.rhs)
      in
      if viol > tol *. rel row.rhs then
        add (Constraint_violated { name = Printf.sprintf "row %d" i; violation = viol }))
    p.constraints;
  List.rev !acc

let check_lp ?(tol = 1e-5) (p : Lp.Lp_problem.t) cert =
  check_gen ~tol ~dim:p.num_vars
    ~witness_violations:(lp_witness_violations ~tol p)
    ~objective:(Lp.Lp_problem.objective_value p) cert

let nlp_witness_violations ~tol (p : Nlp.Nlp_problem.t) x =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  for j = 0 to p.dim - 1 do
    let v = x.(j) in
    let slack = tol *. rel v in
    if v < p.lo.(j) -. slack || v > p.hi.(j) +. slack then
      add (Bound_violated { var = j; value = v; lo = p.lo.(j); hi = p.hi.(j) })
  done;
  List.iter
    (fun (c : Nlp.Nlp_problem.constr) ->
      let gx = c.g x in
      let viol =
        match c.kind with
        | Nlp.Nlp_problem.Ineq -> gx
        | Nlp.Nlp_problem.Eq -> Float.abs gx
      in
      if viol > tol then add (Constraint_violated { name = c.label; violation = viol }))
    p.constraints;
  List.rev !acc

let check_nlp ?(tol = 1e-5) (p : Nlp.Nlp_problem.t) cert =
  check_gen ~tol ~dim:p.dim
    ~witness_violations:(nlp_witness_violations ~tol p)
    ~objective:p.f cert
