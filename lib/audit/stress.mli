(** Fault-injected budget stress and cross-solver differential checks.

    Each trial draws a seeded instance ({!Instances.generate}), a
    solver, and a poll-fuse point [k], then solves under a budget whose
    [k]-th poll deterministically reports exhaustion
    ({!Engine.Budget.make}'s [poll_fuse]). Two properties are enforced:

    - {b soundness}: a solver whose fuse tripped was, by construction,
      told to stop at a poll it actually made — so it must not claim a
      proven-[Optimal] status. Because the fuse is poll-count-based
      (no wall clock), this check has no false positives.
    - {b audited certificates}: every certificate the run emits must
      pass the independent {!Checker}.

    Every [differential_every]-th trial additionally solves the
    instance with all three MINLP solvers under no budget: solvers that
    claim [Optimal] must agree on the objective within
    [differential_rtol] (the NLP-based B&B runs a first-order local
    solver, so exact bound agreement is not guaranteed on equal
    terms). *)

type outcome = {
  trials : int;
  optimal_claims : int;  (** fused trials still finishing with a proof *)
  cert_failures : int;
  soundness_violations : int;
  differential_runs : int;
  differential_failures : int;
  failures : string list;  (** one description per failure, in order *)
}

val clean : outcome -> bool

val pp : Format.formatter -> outcome -> unit

(** [run ~seed ~trials ()] — execute the sweep. [log] receives one
    line per failure as it happens (default: silent).
    [differential_every] (default 10) and [differential_rtol]
    (default 0.01) control the cross-solver phase. *)
val run :
  ?log:(string -> unit) ->
  ?differential_every:int ->
  ?differential_rtol:float ->
  seed:int ->
  trials:int ->
  unit ->
  outcome
