(* Recursive least squares in information-filter form: keep
   P = (J^T J + ridge I)^-1 and theta, fold each new linearized row in
   with the Sherman-Morrison identity. Dimensions here are tiny (4 for
   the scaling-law fit), so plain float arrays beat anything clever. *)

type t = {
  k : int;
  theta : float array;
  p : float array array;  (* symmetric; kept symmetric by construction *)
  mutable n_updates : int;
}

let create ?(prior = 1e-4) theta0 =
  if prior <= 0. then invalid_arg "Rls.create: prior must be > 0";
  let k = Array.length theta0 in
  if k = 0 then invalid_arg "Rls.create: empty parameter vector";
  {
    k;
    theta = Array.copy theta0;
    p = Array.init k (fun i -> Array.init k (fun j -> if i = j then 1. /. prior else 0.));
    n_updates = 0;
  }

let of_normal_equations ?(ridge = 1e-8) ~jtj theta0 =
  let k = Array.length theta0 in
  if k = 0 then invalid_arg "Rls.of_normal_equations: empty parameter vector";
  if Array.length jtj <> k || Array.exists (fun row -> Array.length row <> k) jtj then
    invalid_arg "Rls.of_normal_equations: jtj must be k x k";
  let m = Mat.init k k (fun i j -> jtj.(i).(j) +. if i = j then ridge else 0.) in
  let inv = Mat.inverse m in
  {
    k;
    theta = Array.copy theta0;
    p = Array.init k (fun i -> Array.init k (fun j -> Mat.get inv i j));
    n_updates = 0;
  }

let check_len t what v =
  if Array.length v <> t.k then
    invalid_arg (Printf.sprintf "Rls.%s: expected length %d, got %d" what t.k (Array.length v))

(* P g and 1 + g^T P g, shared by [gain] and [update] *)
let project t g =
  let pg = Array.make t.k 0. in
  for i = 0 to t.k - 1 do
    let s = ref 0. in
    for j = 0 to t.k - 1 do
      s := !s +. (t.p.(i).(j) *. g.(j))
    done;
    pg.(i) <- !s
  done;
  let denom = ref 1. in
  for i = 0 to t.k - 1 do
    denom := !denom +. (g.(i) *. pg.(i))
  done;
  (pg, !denom)

let gain t ~gradient =
  check_len t "gain" gradient;
  let pg, denom = project t gradient in
  Array.map (fun v -> v /. denom) pg

let update t ~gradient ~error =
  check_len t "update" gradient;
  let pg, denom = project t gradient in
  (* theta += (P g / denom) * error *)
  for i = 0 to t.k - 1 do
    t.theta.(i) <- t.theta.(i) +. (pg.(i) /. denom *. error)
  done;
  (* P -= (P g)(P g)^T / denom — symmetric rank-one downdate *)
  for i = 0 to t.k - 1 do
    for j = 0 to t.k - 1 do
      t.p.(i).(j) <- t.p.(i).(j) -. (pg.(i) *. pg.(j) /. denom)
    done
  done;
  t.n_updates <- t.n_updates + 1

let theta t = Array.copy t.theta

let set_theta t v =
  check_len t "set_theta" v;
  Array.blit v 0 t.theta 0 t.k

let updates t = t.n_updates
