(** Recursive least squares with Sherman–Morrison rank-one updates.

    The online half of the fitting layer: a state holds the current
    parameter estimate [theta] and the inverse normal-equations matrix
    [P = (JᵀJ + ridge·I)⁻¹] of the linearized system. Each [update]
    folds one new (gradient, prediction-error) pair into both in O(k²)
    — no refactorization, no stored observation matrix — via the
    Sherman–Morrison identity

    [P ← P − (P g gᵀ P) / (1 + gᵀ P g)],  [theta ← theta + (P g)·e].

    Numerically this is the information-filter form of recursive least
    squares; it is exact for linear models and a Gauss–Newton
    approximation for linearized nonlinear ones (the caller decides
    when linearization error warrants a full refit — see
    {!Hslb.Fitting.Online}). *)

type t

(** [create ?prior theta0] — a state whose estimate is [theta0] held by
    a ridge prior of weight [prior] (default [1e-4]): [P = I/prior], so
    small priors yield large first steps (weakly held seed), large
    priors keep early updates conservative. [theta0] is copied. *)
val create : ?prior:float -> float array -> t

(** [of_normal_equations ?ridge ~jtj theta] — seed from an explicit
    normal-equations matrix [JᵀJ] (e.g. the Jacobian of a batch fit at
    its solution): [P = (JᵀJ + ridge·I)⁻¹] (default ridge [1e-8]).
    @raise Invalid_argument on a non-square or mismatched [jtj].
    @raise Mat.Singular when [JᵀJ + ridge·I] is singular. *)
val of_normal_equations : ?ridge:float -> jtj:float array array -> float array -> t

(** [update t ~gradient ~error] — one rank-one step: fold in an
    observation whose linearized model row is [gradient] and whose
    prediction error (observed minus predicted, in the residual's
    scaling) is [error].
    @raise Invalid_argument on a gradient of the wrong length. *)
val update : t -> gradient:float array -> error:float -> unit

(** Current estimate (a copy). *)
val theta : t -> float array

(** [set_theta t v] — overwrite the estimate in place (used to project
    back into a feasible box after an update). Length-checked. *)
val set_theta : t -> float array -> unit

(** [gain t ~gradient] — the Kalman gain [P g / (1 + gᵀ P g)] the next
    [update] with this gradient would apply, without applying it. *)
val gain : t -> gradient:float array -> float array

(** Number of [update] calls folded in so far. *)
val updates : t -> int
