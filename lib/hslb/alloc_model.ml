type spec = {
  fc : Classes.fitted;
  n_min : int;
  n_max : int;
  allowed : int list option;
}

let spec_of ?(n_min = 1) ?(n_max = max_int) ?allowed fc =
  if n_min < 1 || n_max < n_min then invalid_arg "Alloc_model.spec_of: bad node range";
  (match allowed with
  | Some [] -> invalid_arg "Alloc_model.spec_of: empty allowed list"
  | Some l -> List.iter (fun n -> if n < 1 then invalid_arg "Alloc_model.spec_of: allowed < 1") l
  | None -> ());
  { fc; n_min; n_max; allowed }

type allocation = {
  nodes_per_task : int array;
  predicted_makespan : float;
  predicted_times : float array;
  status : Minlp.Solution.status;
  stats : Minlp.Solution.stats;
  certificate : Engine.Certificate.t option;
}

let law_expr (law : Scaling_law.t) n_var =
  let open Minlp.Expr in
  let n = var n_var in
  add
    [
      scale law.Scaling_law.a (pow n (-.law.Scaling_law.c));
      scale law.Scaling_law.b n;
      const law.Scaling_law.d;
    ]

let effective_range ~n_total spec =
  (Stdlib.min spec.n_min n_total |> Stdlib.max 1, Stdlib.min spec.n_max n_total)

(* restrict an integer variable to a discrete value list: binaries +
   SOS1, with linking rows n = Σ z_k·v_k, Σ z_k = 1 *)
let restrict_to_values b ~var:n_var values =
  (* duplicates would put two SOS1 members at the same weight and make
     the set-branching split degenerate; unsorted input only hurts
     debuggability — normalize both *)
  let values = List.sort_uniq compare values in
  let zs = List.map (fun _ -> Minlp.Problem.Builder.add_var b Minlp.Problem.Binary) values in
  Minlp.Problem.Builder.add_constr b
    (Minlp.Expr.linear (List.map (fun z -> (z, 1.)) zs))
    Lp.Lp_problem.Eq 1.;
  Minlp.Problem.Builder.add_constr b
    (Minlp.Expr.add
       (Minlp.Expr.var n_var
       :: List.map2 (fun z v -> Minlp.Expr.scale (-.float_of_int v) (Minlp.Expr.var z)) zs values))
    Lp.Lp_problem.Eq 0.;
  Minlp.Problem.Builder.add_sos1 b (List.map2 (fun z v -> (z, float_of_int v)) zs values);
  List.combine zs values

let build_minlp ~objective ~n_total specs =
  if specs = [] then invalid_arg "Alloc_model.build_minlp: no classes";
  if n_total < 1 then invalid_arg "Alloc_model.build_minlp: n_total must be >= 1";
  let b = Minlp.Problem.Builder.create () in
  match objective with
  | Objective.Max_min -> invalid_arg "Alloc_model.build_minlp: Max_min uses the bisection solver"
  | Objective.Min_max | Objective.Min_sum ->
    let has_t = objective = Objective.Min_max in
    let t_var =
      if has_t then
        Some (Minlp.Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e12 Minlp.Problem.Continuous)
      else None
    in
    let n_vars =
      List.mapi
        (fun i spec ->
          let lo, hi = effective_range ~n_total spec in
          Minlp.Problem.Builder.add_var b
            ~name:(Printf.sprintf "n_%s" spec.fc.Classes.cls.Classes.name)
            ~lo:(float_of_int lo) ~hi:(float_of_int hi) Minlp.Problem.Integer
          |> fun v ->
          ignore i;
          v)
        specs
    in
    (* per-class time constraints / objective terms; for [Min_sum] the
       per-class epigraph variables are kept for the warm-start lift *)
    let t_sum_vars =
      match t_var with
    | Some t ->
      Minlp.Problem.Builder.set_objective b (Minlp.Expr.var t);
      List.iteri
        (fun i spec ->
          let n_var = List.nth n_vars i in
          Minlp.Problem.Builder.add_constr b
            ~name:(Printf.sprintf "time_%s" spec.fc.Classes.cls.Classes.name)
            Minlp.Expr.(law_expr spec.fc.Classes.fit.Fitting.law n_var - var t)
            Lp.Lp_problem.Le 0.)
        specs;
      []
    | None ->
      (* separable epigraph: one t_c per class keeps every nonlinear
         constraint two-dimensional, which makes the outer-approximation
         cuts sharp (a single 2F-dimensional epigraph makes OA crawl) *)
      let t_vars =
        List.mapi
          (fun i spec ->
            let n_var = List.nth n_vars i in
            let t_c =
              Minlp.Problem.Builder.add_var b
                ~name:(Printf.sprintf "t_%s" spec.fc.Classes.cls.Classes.name)
                ~lo:0. ~hi:1e12 Minlp.Problem.Continuous
            in
            Minlp.Problem.Builder.add_constr b
              ~name:(Printf.sprintf "sumtime_%s" spec.fc.Classes.cls.Classes.name)
              Minlp.Expr.(
                scale
                  (float_of_int spec.fc.Classes.cls.Classes.count)
                  (law_expr spec.fc.Classes.fit.Fitting.law n_var)
                - var t_c)
              Lp.Lp_problem.Le 0.;
            t_c)
          specs
      in
      Minlp.Problem.Builder.set_objective b
        (Minlp.Expr.linear (List.map (fun t -> (t, 1.)) t_vars));
      t_vars
    in
    (* node budget *)
    Minlp.Problem.Builder.add_constr b ~name:"budget"
      (Minlp.Expr.linear
         (List.mapi
            (fun i spec ->
              (List.nth n_vars i, float_of_int spec.fc.Classes.cls.Classes.count))
            specs))
      Lp.Lp_problem.Le (float_of_int n_total);
    (* sweet spots *)
    let z_maps =
      List.concat
        (List.mapi
           (fun i spec ->
             match spec.allowed with
             | None -> []
             | Some values ->
               let lo, hi = effective_range ~n_total spec in
               let feasible_values = List.filter (fun v -> v >= lo && v <= hi) values in
               if feasible_values = [] then
                 invalid_arg "Alloc_model.build_minlp: no allowed value inside node range";
               [ (i, restrict_to_values b ~var:(List.nth n_vars i) feasible_values) ])
           specs)
    in
    let problem = Minlp.Problem.Builder.build b in
    let n_vars_arr = Array.of_list n_vars in
    let specs_arr = Array.of_list specs in
    (* lift a nodes-per-class vector into the full variable space:
       epigraph value(s) from the fitted laws, sweet-spot binaries set
       to the matching value *)
    let lift nodes =
      if Array.length nodes <> Array.length n_vars_arr then
        invalid_arg "Alloc_model.build_minlp: lift: wrong vector length";
      let x = Array.make problem.Minlp.Problem.num_vars 0. in
      Array.iteri (fun i nv -> x.(nv) <- float_of_int nodes.(i)) n_vars_arr;
      let time i =
        Scaling_law.eval_int specs_arr.(i).fc.Classes.fit.Fitting.law nodes.(i)
      in
      (match t_var with
      | Some t ->
        let m = ref 0. in
        Array.iteri (fun i _ -> m := Float.max !m (time i)) n_vars_arr;
        x.(t) <- !m
      | None ->
        List.iteri
          (fun i t_c ->
            x.(t_c) <-
              float_of_int specs_arr.(i).fc.Classes.cls.Classes.count *. time i)
          t_sum_vars);
      List.iter
        (fun (i, zs) -> List.iter (fun (z, v) -> if v = nodes.(i) then x.(z) <- 1.) zs)
        z_maps;
      x
    in
    (problem, n_vars_arr, lift)

let predicted_of specs nodes =
  let times =
    Array.of_list
      (List.mapi
         (fun i spec -> Scaling_law.eval_int spec.fc.Classes.fit.Fitting.law nodes.(i))
         specs)
  in
  (Array.fold_left Float.max 0. times, times)

(* --- Max_min: customized bisection over the achievable minimum time --- *)

let max_min_solve ~n_total specs =
  let specs_arr = Array.of_list specs in
  let k = Array.length specs_arr in
  (* restrict to the decreasing region of each fitted curve *)
  let decreasing_cap spec =
    let _, hi = effective_range ~n_total spec in
    let law = spec.fc.Classes.fit.Fitting.law in
    let opt = Scaling_law.optimal_nodes law ~max_nodes:(float_of_int hi) in
    Stdlib.max 1 (int_of_float (Float.floor opt))
  in
  let value_list spec =
    let lo, _ = effective_range ~n_total spec in
    let cap = decreasing_cap spec in
    match spec.allowed with
    | Some values -> List.sort compare (List.filter (fun v -> v >= lo && v <= cap) values)
    | None -> List.init (Stdlib.max 0 (cap - lo + 1)) (fun i -> lo + i)
  in
  let values = Array.map value_list specs_arr in
  Array.iteri
    (fun i vs ->
      if vs = [] then
        invalid_arg
          (Printf.sprintf "Alloc_model.max_min: class %s has no feasible size"
             specs_arr.(i).fc.Classes.cls.Classes.name))
    values;
  let time spec n = Scaling_law.eval_int spec.fc.Classes.fit.Fitting.law n in
  (* cap_i(t): largest feasible size with time >= t *)
  let cap_at i t =
    let spec = specs_arr.(i) in
    List.fold_left (fun acc v -> if time spec v >= t then Stdlib.max acc v else acc) (-1) values.(i)
  in
  let budget_ok t =
    let total = ref 0 in
    let ok = ref true in
    for i = 0 to k - 1 do
      let cap = cap_at i t in
      if cap < 0 then ok := false
      else total := !total + (specs_arr.(i).fc.Classes.cls.Classes.count * cap)
    done;
    !ok && !total >= n_total
  in
  (* the minimum time cannot exceed any class's time at its smallest size *)
  let t_hi =
    Array.fold_left
      (fun acc (spec, vs) -> Float.min acc (time spec (List.hd vs)))
      infinity
      (Array.map2 (fun s v -> (s, v)) specs_arr values)
  in
  let t_star =
    if budget_ok t_hi then t_hi
    else begin
      let lo = ref 0. and hi = ref t_hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if budget_ok mid then lo := mid else hi := mid
      done;
      !lo
    end
  in
  (* realize an allocation: start from the smallest sizes, grow toward the
     caps, spending remaining budget on the slowest class first *)
  let caps = Array.init k (fun i -> Stdlib.max (cap_at i t_star) (List.hd values.(i))) in
  let nodes = Array.map List.hd values in
  let counts = Array.map (fun s -> s.fc.Classes.cls.Classes.count) specs_arr in
  let used = ref 0 in
  Array.iteri (fun i n -> used := !used + (counts.(i) * n)) nodes;
  let next_value i cur =
    let rec go = function
      | [] -> None
      | v :: rest -> if v > cur then Some v else go rest
    in
    go values.(i)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    (* slowest class first *)
    let order = Array.init k Fun.id in
    Array.sort
      (fun i j -> compare (time specs_arr.(j) nodes.(j)) (time specs_arr.(i) nodes.(i)))
      order;
    Array.iter
      (fun i ->
        if not !progress then
          match next_value i nodes.(i) with
          | Some v when v <= caps.(i) && !used + (counts.(i) * (v - nodes.(i))) <= n_total ->
            used := !used + (counts.(i) * (v - nodes.(i)));
            nodes.(i) <- v;
            progress := true
          | Some _ | None -> ())
      order
  done;
  let predicted_makespan, predicted_times = predicted_of specs nodes in
  {
    nodes_per_task = nodes;
    predicted_makespan;
    predicted_times;
    status = Minlp.Solution.Optimal;
    stats = Minlp.Solution.empty_stats;
    certificate =
      Some
        (Engine.Certificate.make ~producer:"hslb.bisection"
           ~claimed_status:Minlp.Solution.Optimal
           ~witness:(Array.map float_of_int nodes)
           ~claimed_obj:predicted_makespan ~minimize:false
           ~evidence:
             (Engine.Certificate.Exact_method
                "bisection over monotone per-class time curves")
           ());
  }

(* Min_sum is a separable convex resource-allocation problem, solvable
   exactly by greedy marginal allocation (Ibaraki & Katoh — the paper's
   reference [11] for customized polynomial-time solvers): start at the
   minimum sizes and repeatedly give a node to the class with the best
   total-time decrease. Greedy is optimal because each class cost is
   convex in its (integer) node count. *)
let min_sum_greedy ~n_total specs =
  let specs_arr = Array.of_list specs in
  let k = Array.length specs_arr in
  let counts = Array.map (fun s -> s.fc.Classes.cls.Classes.count) specs_arr in
  let time i n = Scaling_law.eval_int specs_arr.(i).fc.Classes.fit.Fitting.law n in
  let lo_hi = Array.map (effective_range ~n_total) specs_arr in
  let allowed_next i cur =
    match specs_arr.(i).allowed with
    | None -> if cur + 1 <= snd lo_hi.(i) then Some (cur + 1) else None
    | Some values ->
      List.fold_left
        (fun acc v ->
          if v > cur && v <= snd lo_hi.(i) then
            match acc with Some best when best <= v -> acc | Some _ | None -> Some v
          else acc)
        None values
  in
  let start i =
    match specs_arr.(i).allowed with
    | None -> fst lo_hi.(i)
    | Some values ->
      List.fold_left
        (fun acc v ->
          if v >= fst lo_hi.(i) && v <= snd lo_hi.(i) then
            match acc with Some best when best <= v -> acc | Some _ | None -> Some v
          else acc)
        None values
      |> Option.value ~default:(fst lo_hi.(i))
  in
  let nodes = Array.init k start in
  let used = ref 0 in
  Array.iteri (fun i n -> used := !used + (counts.(i) * n)) nodes;
  if !used > n_total then Error Minlp.Solution.Infeasible
  else begin
  let progress = ref true in
  while !progress do
    progress := false;
    (* best marginal improvement per node spent *)
    let best = ref (-1) and best_gain = ref 0. and best_next = ref 0 in
    for i = 0 to k - 1 do
      match allowed_next i nodes.(i) with
      | Some next when !used + (counts.(i) * (next - nodes.(i))) <= n_total ->
        let gain =
          float_of_int counts.(i)
          *. (time i nodes.(i) -. time i next)
          /. float_of_int (counts.(i) * (next - nodes.(i)))
        in
        if gain > !best_gain then begin
          best := i;
          best_gain := gain;
          best_next := next
        end
      | Some _ | None -> ()
    done;
    if !best >= 0 && !best_gain > 0. then begin
      used := !used + (counts.(!best) * (!best_next - nodes.(!best)));
      nodes.(!best) <- !best_next;
      progress := true
    end
  done;
  let predicted_makespan, predicted_times = predicted_of specs nodes in
  let total_time = ref 0. in
  Array.iteri
    (fun i n -> total_time := !total_time +. (float_of_int counts.(i) *. time i n))
    nodes;
  Ok
    {
      nodes_per_task = nodes;
      predicted_makespan;
      predicted_times;
      status = Minlp.Solution.Optimal;
      stats = Minlp.Solution.empty_stats;
      certificate =
        Some
          (Engine.Certificate.make ~producer:"hslb.greedy"
             ~claimed_status:Minlp.Solution.Optimal
             ~witness:(Array.map float_of_int nodes)
             ~claimed_obj:!total_time ~claimed_bound:!total_time
             ~evidence:
               (Engine.Certificate.Exact_method
                  "greedy marginal allocation on a separable convex objective \
                   (Ibaraki-Katoh)")
             ());
    }
  end

(* canonical, injective instance fingerprint: length-prefixed names,
   round-tripping float formats, sorted-deduplicated allowed lists (the
   model dedups them too). Equal fingerprints imply equal instances. *)
let fingerprint ~objective ~n_total specs =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "alloc-v1|%s|%d|%d" (Objective.to_string objective) n_total
       (List.length specs));
  List.iter
    (fun spec ->
      let law = spec.fc.Classes.fit.Fitting.law in
      let name = spec.fc.Classes.cls.Classes.name in
      Buffer.add_string b
        (Printf.sprintf "|%d:%s,%d,%d,%d,%.17g,%.17g,%.17g,%.17g," (String.length name)
           name spec.fc.Classes.cls.Classes.count spec.n_min spec.n_max law.Scaling_law.a
           law.Scaling_law.b law.Scaling_law.c law.Scaling_law.d);
      match spec.allowed with
      | None -> Buffer.add_char b '*'
      | Some values ->
        List.iter
          (fun v -> Buffer.add_string b (Printf.sprintf "a%d" v))
          (List.sort_uniq compare values))
    specs;
  Buffer.contents b

let decode_solution ~producer ?budget ~problem specs n_vars (sol : Minlp.Solution.t) =
  match sol.Minlp.Solution.status with
  | (Minlp.Solution.Optimal | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _)
    when Array.length sol.Minlp.Solution.x > 0 ->
    let nodes =
      Array.map (fun v -> int_of_float (Float.round sol.Minlp.Solution.x.(v))) n_vars
    in
    let predicted_makespan, predicted_times = predicted_of specs nodes in
    let cert =
      Minlp.Solution.certify ~producer ?budget
        ~minimize:problem.Minlp.Problem.minimize ~tol:1e-4 sol
    in
    Ok
      {
        nodes_per_task = nodes;
        predicted_makespan;
        predicted_times;
        status = sol.Minlp.Solution.status;
        stats = sol.Minlp.Solution.stats;
        certificate = Some cert;
      }
  | st -> Error st

(* a 1e-4 relative gap is far below benchmark noise; demanding more
   makes the tree crawl on near-flat fitted curves *)
let run_minlp_solver solver ?budget ?tally ?warm problem =
  match solver with
  | Engine.Solver_choice.Oa ->
    Minlp.Oa.run
      ~options:{ Minlp.Oa.default_options with rel_gap = 1e-4 }
      ?budget ?tally ?warm_start:warm problem
  | Engine.Solver_choice.Bnb ->
    Minlp.Bnb.run
      ~options:{ Minlp.Bnb.default_options with rel_gap = 1e-4 }
      ?budget ?tally ?warm_start:warm problem
  | Engine.Solver_choice.Oa_multi ->
    (Minlp.Oa_multi.run
       ~options:{ Minlp.Oa_multi.default_options with rel_gap = 1e-4 }
       ?budget ?tally problem)
      .Minlp.Oa_multi.solution

(* race all three MINLP strategies on one shared budget; the first
   Optimal cancels the rest, and on exhaustion the best incumbent across
   lanes wins. Per-lane telemetry is folded into the caller's tally and
   exposed through [race_report]. *)
let portfolio_minlp ?budget ?tally ?race_report problem n_vars specs warm =
  let lane choice =
    ( Engine.Solver_choice.to_string choice,
      fun shared_budget ->
        let lane_tally = Engine.Telemetry.create () in
        let warm = Option.map Array.copy warm in
        let sol = run_minlp_solver choice ~budget:shared_budget ~tally:lane_tally ?warm problem in
        (sol, lane_tally) )
  in
  let outcome =
    Runtime.Portfolio.race ?budget
      ~final:(fun ((sol : Minlp.Solution.t), _) ->
        sol.Minlp.Solution.status = Minlp.Solution.Optimal)
      ~better:(fun ((a : Minlp.Solution.t), _) ((b : Minlp.Solution.t), _) ->
        match (Minlp.Solution.has_incumbent a, Minlp.Solution.has_incumbent b) with
        | true, false -> true
        | false, (true | false) -> false
        | true, true -> a.Minlp.Solution.obj < b.Minlp.Solution.obj)
      (List.map lane Engine.Solver_choice.all)
  in
  (* fold the whole race's work into the caller's tally: the shared
     budget charged all lanes, so the counters should agree with it *)
  (match tally with
  | None -> ()
  | Some t ->
    List.iter
      (fun (l : _ Runtime.Portfolio.lane) ->
        match l.Runtime.Portfolio.outcome with
        | Ok (_, lane_tally) -> Engine.Telemetry.merge_into t lane_tally
        | Error _ -> ())
      outcome.Runtime.Portfolio.lanes);
  (match race_report with
  | None -> ()
  | Some r ->
    let lanes =
      List.map
        (fun (l : _ Runtime.Portfolio.lane) ->
          let status, objective, nodes, lps =
            match l.Runtime.Portfolio.outcome with
            | Ok ((sol : Minlp.Solution.t), (lt : Engine.Telemetry.t)) ->
              ( Minlp.Solution.status_to_string sol.Minlp.Solution.status,
                (if Minlp.Solution.has_incumbent sol then sol.Minlp.Solution.obj else nan),
                lt.Engine.Telemetry.nodes_expanded,
                lt.Engine.Telemetry.lp_solves )
            | Error Runtime.Portfolio.Skipped -> ("skipped", nan, 0, 0)
            | Error e -> (Printf.sprintf "raised: %s" (Printexc.to_string e), nan, 0, 0)
          in
          {
            Engine.Run_report.lane_solver = l.Runtime.Portfolio.lane_name;
            lane_status = status;
            lane_objective = objective;
            lane_wall_s = l.Runtime.Portfolio.lane_wall_s;
            lane_nodes_expanded = nodes;
            lane_lp_solves = lps;
          })
        outcome.Runtime.Portfolio.lanes
    in
    r :=
      Some
        {
          Engine.Run_report.winner = outcome.Runtime.Portfolio.winner;
          race_wall_s = outcome.Runtime.Portfolio.race_wall_s;
          lanes;
        });
  (* the racing winner does not get the benefit of the doubt: its
     certificate is re-verified against the raw model before the answer
     leaves the portfolio, and a rejected optimality proof is demoted
     to a (still feasibility-checked) incumbent *)
  let producer = "portfolio:" ^ outcome.Runtime.Portfolio.winner in
  match
    decode_solution ~producer ?budget ~problem specs n_vars
      (fst outcome.Runtime.Portfolio.value)
  with
  | Error _ as e -> e
  | Ok alloc -> (
    match alloc.certificate with
    | None -> Ok alloc
    | Some cert -> (
      match Audit.check_minlp problem cert with
      | Ok () -> Ok alloc
      | Error _ -> (
        match alloc.status with
        | Minlp.Solution.Optimal ->
          Ok { alloc with status = Minlp.Solution.Feasible Minlp.Solution.Audit_failed }
        | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _
        | Minlp.Solution.Infeasible | Minlp.Solution.Unbounded ->
          Ok alloc)))

let solve ?(strategy = `Auto) ?(solver = Engine.Solver_choice.Oa)
    ?(objective = Objective.Min_max) ?budget ?cancel ?warm_start ?trace ?cache
    ?race_report ~n_total specs =
  if specs = [] then invalid_arg "Alloc_model.solve: no classes";
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  (match race_report with Some r -> r := None | None -> ());
  let key = lazy (fingerprint ~objective ~n_total specs) in
  let cached =
    match cache with Some c -> Runtime.Cache.find c (Lazy.force key) | None -> None
  in
  match cached with
  | Some alloc -> Ok alloc
  | None ->
    let result =
      match objective with
      | Objective.Max_min -> Ok (max_min_solve ~n_total specs)
      | Objective.Min_sum -> min_sum_greedy ~n_total specs
      | Objective.Min_max ->
        let problem, n_vars, lift = build_minlp ~objective ~n_total specs in
        (* Warm start: the caller's nodes-per-class vector, or the greedy
           min-sum allocation (it respects the budget row, the boxes and the
           sweet-spot lists, so it lifts to a feasible point). Priming the
           incumbent both prunes the tree and guarantees a usable answer
           when the budget runs out. *)
        let warm =
          match warm_start with
          | Some nodes -> Some (lift nodes)
          | None -> (
            match min_sum_greedy ~n_total specs with
            | Ok a -> Some (lift a.nodes_per_task)
            | Error _ | (exception Invalid_argument _) -> None)
        in
        (match strategy with
        | `Portfolio ->
          portfolio_minlp ?budget ?tally:trace ?race_report problem n_vars specs warm
        | `Auto | `Single _ ->
          let solver = match strategy with `Single s -> s | `Auto | `Portfolio -> solver in
          decode_solution
            ~producer:(Engine.Solver_choice.to_string solver)
            ?budget ~problem specs n_vars
            (run_minlp_solver solver ?budget ?tally:trace ?warm problem))
    in
    (* memoize only proven optima: budget-exhausted incumbents depend on
       wall-clock luck and must not be replayed as answers *)
    (match (result, cache) with
    | Ok alloc, Some c when alloc.status = Minlp.Solution.Optimal ->
      Runtime.Cache.put c (Lazy.force key) alloc
    | (Ok _ | Error _), _ -> ());
    result

let assignment_milp ?(max_nodes = 20_000) ~group_sizes ~duration ~num_tasks () =
  let ngroups = Array.length group_sizes in
  if ngroups = 0 then invalid_arg "Alloc_model.assignment_milp: no groups";
  let lpt () =
    let order = Array.init num_tasks Fun.id in
    Array.sort (fun t1 t2 -> compare (duration ~task:t2 ~group:0) (duration ~task:t1 ~group:0)) order;
    let load = Array.make ngroups 0. in
    let assign = Array.make num_tasks (-1) in
    Array.iter
      (fun task ->
        let best = ref 0 and best_f = ref infinity in
        for g = 0 to ngroups - 1 do
          let f = load.(g) +. duration ~task ~group:g in
          if f < !best_f then begin
            best_f := f;
            best := g
          end
        done;
        load.(!best) <- !best_f;
        assign.(task) <- !best)
      order;
    (assign, Array.fold_left Float.max 0. load)
  in
  if num_tasks = 0 then ([||], 0.)
  else begin
    let b = Minlp.Problem.Builder.create () in
    let t_var = Minlp.Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e12 Minlp.Problem.Continuous in
    let x = Array.make_matrix num_tasks ngroups 0 in
    for t = 0 to num_tasks - 1 do
      for g = 0 to ngroups - 1 do
        x.(t).(g) <-
          Minlp.Problem.Builder.add_var b ~name:(Printf.sprintf "x_%d_%d" t g)
            Minlp.Problem.Binary
      done
    done;
    Minlp.Problem.Builder.set_objective b (Minlp.Expr.var t_var);
    for t = 0 to num_tasks - 1 do
      Minlp.Problem.Builder.add_constr b
        (Minlp.Expr.linear (List.init ngroups (fun g -> (x.(t).(g), 1.))))
        Lp.Lp_problem.Eq 1.
    done;
    for g = 0 to ngroups - 1 do
      Minlp.Problem.Builder.add_constr b
        (Minlp.Expr.add
           (Minlp.Expr.neg (Minlp.Expr.var t_var)
           :: List.init num_tasks (fun t ->
                  Minlp.Expr.scale (duration ~task:t ~group:g) (Minlp.Expr.var x.(t).(g)))))
        Lp.Lp_problem.Le 0.
    done;
    let options = { Minlp.Milp.default_options with max_nodes } in
    let sol = Minlp.Milp.run ~options (Minlp.Problem.Builder.build b) in
    match sol.Minlp.Solution.status with
    | Minlp.Solution.Optimal ->
      let assign = Array.make num_tasks (-1) in
      for t = 0 to num_tasks - 1 do
        let best = ref 0 in
        for g = 1 to ngroups - 1 do
          if sol.Minlp.Solution.x.(x.(t).(g)) > sol.Minlp.Solution.x.(x.(t).(!best)) then best := g
        done;
        assign.(t) <- !best
      done;
      (assign, sol.Minlp.Solution.obj)
    | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _ | Minlp.Solution.Infeasible
    | Minlp.Solution.Unbounded ->
      lpt ()
  end
