type fit = {
  law : Scaling_law.t;
  r2 : float;
  rmse : float;
  observations : (float * float) array;
}

(* shared by the batch wrapper and Online.refit: the exact messages are
   part of the public contract (pinned by tests), whichever path raises *)
let validate_distinct obs =
  let distinct = List.sort_uniq compare (Array.to_list (Array.map fst obs)) in
  if List.length distinct < 2 then
    invalid_arg "Fitting.fit_observations: need observations at 2 or more distinct node counts"

let validate_values obs =
  Array.iter
    (fun (n, y) ->
      if n < 1. || y < 0. then invalid_arg "Fitting.fit_observations: invalid observation")
    obs

let eval_params p n = (p.(0) /. (n ** p.(2))) +. (p.(1) *. n) +. p.(3)

(* relative residuals: scaling curves span orders of magnitude between
   n=1 and the machine, and the allocation lands in the fast tail —
   absolute least squares would let the huge small-n times dominate
   and leave the tail poorly fitted *)
let residual_of obs p = Array.map (fun (n, y) -> (eval_params p n -. y) /. Float.max y 1e-12) obs

(* gradient of one relative residual w.r.t. (a, b, c, d) at p *)
let residual_gradient p n y =
  let scale = Float.max y 1e-12 in
  let nc = n ** p.(2) in
  [|
    1. /. nc /. scale;
    n /. scale;
    -.p.(0) *. Float.log n /. nc /. scale;
    1. /. scale;
  |]

let box_of obs =
  let y_max = Array.fold_left (fun acc (_, y) -> Float.max acc y) 0. obs in
  let n_max = Array.fold_left (fun acc (n, _) -> Float.max acc n) 1. obs in
  (* box: c in [0, 2] — scaling exponents beyond 2 are not physical for
     this model and, with very few sample points, runaway c produces
     pathologically flat curves downstream; a, d bounded by observable
     magnitudes *)
  let lo = [| 0.; 0.; 0.; 0. |] in
  let hi = [| 1e3 *. y_max *. n_max; y_max; 2.; y_max *. 2. |] in
  let x0 = [| y_max; 1e-6; 1.; 0.01 *. y_max |] in
  (lo, hi, x0)

let scored_fit law obs =
  let observed = Array.map snd obs in
  let predicted = Array.map (fun (n, _) -> Scaling_law.eval law n) obs in
  {
    law;
    r2 = Numerics.Stats.r_squared ~observed ~predicted;
    rmse = Numerics.Stats.rmse ~observed ~predicted;
    observations = Array.copy obs;
  }

let batch_fit ~starts ~rng obs =
  validate_distinct obs;
  validate_values obs;
  let residual = residual_of obs in
  let lo, hi, x0 = box_of obs in
  let r = Numerics.Least_squares.fit_multi_start ~rng ~starts ~residual ~lo ~hi x0 in
  scored_fit (Scaling_law.of_array r.Numerics.Least_squares.params) obs

module Online = struct
  type t = {
    rng : Numerics.Rng.t;
    starts : int;
    refit_threshold : float;
    mutable obs_rev : (float * float) list;  (* newest first; all retained *)
    mutable n_obs : int;
    mutable rls : Numerics.Rls.t option;  (* None until seeded or refitted *)
    mutable current_fit : fit option;
    mutable n_rank_one : int;
    mutable n_refits : int;
  }

  let make ?(starts = 12) ?(refit_threshold = 0.25) ~rng () =
    if refit_threshold <= 0. then
      invalid_arg "Fitting.Online: refit_threshold must be > 0";
    {
      rng;
      starts;
      refit_threshold;
      obs_rev = [];
      n_obs = 0;
      rls = None;
      current_fit = None;
      n_rank_one = 0;
      n_refits = 0;
    }

  let create ?starts ?refit_threshold ~rng obs =
    let t = make ?starts ?refit_threshold ~rng () in
    t.obs_rev <- List.rev (Array.to_list obs);
    t.n_obs <- Array.length obs;
    t

  let of_law ?starts ?refit_threshold ?prior ~rng law =
    let t = make ?starts ?refit_threshold ~rng () in
    t.rls <- Some (Numerics.Rls.create ?prior (Scaling_law.to_array law));
    t.current_fit <- Some { law; r2 = 1.0; rmse = 0.0; observations = [||] };
    t

  let observations t = Array.of_list (List.rev t.obs_rev)
  let current t = t.current_fit
  let rank_one_updates t = t.n_rank_one
  let full_refits t = t.n_refits

  let law t =
    match t.current_fit with
    | Some f -> f.law
    | None -> invalid_arg "Fitting.Online.law: no fit yet (call refit, or seed with of_law)"

  (* the non-negativity box the batch path enforces; Scaling_law.make
     rejects negative coefficients, so an unclamped rank-one step could
     leave the state unable to produce a law at all *)
  let clamp_theta theta =
    Array.mapi (fun i v -> if i = 2 then Float.min 2. (Float.max 0. v) else Float.max 0. v) theta

  let distinct_counts t =
    List.length (List.sort_uniq compare (List.map fst t.obs_rev))

  let refit t =
    let obs = observations t in
    let f = batch_fit ~starts:t.starts ~rng:t.rng obs in
    (* re-linearize at the batch solution so subsequent rank-one
       updates start from the true curvature, not a stale prior *)
    let p = Scaling_law.to_array f.law in
    let k = 4 in
    let jtj = Array.make_matrix k k 0. in
    Array.iter
      (fun (n, y) ->
        let g = residual_gradient p n y in
        for i = 0 to k - 1 do
          for j = 0 to k - 1 do
            jtj.(i).(j) <- jtj.(i).(j) +. (g.(i) *. g.(j))
          done
        done)
      obs;
    t.rls <- Some (Numerics.Rls.of_normal_equations ~jtj p);
    t.current_fit <- Some f;
    t.n_refits <- t.n_refits + 1;
    f

  (* relative RMSE of the current law over the most recent observations:
     the linearization-error monitor deciding when rank-one updates have
     wandered too far from the true least-squares surface *)
  let recent_error t law =
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let recent = take 8 t.obs_rev in
    match recent with
    | [] -> 0.
    | _ ->
      let sq =
        List.fold_left
          (fun acc (n, y) ->
            let r = (Scaling_law.eval law n -. y) /. Float.max y 1e-12 in
            acc +. (r *. r))
          0. recent
      in
      sqrt (sq /. float_of_int (List.length recent))

  let observe t (n, y) =
    if n < 1. || y < 0. then invalid_arg "Fitting.Online.observe: invalid observation";
    t.obs_rev <- (n, y) :: t.obs_rev;
    t.n_obs <- t.n_obs + 1;
    match t.rls with
    | None -> ()  (* warming: no linearization point yet, just buffer *)
    | Some rls ->
      let p = Numerics.Rls.theta rls in
      let scale = Float.max y 1e-12 in
      let predicted = eval_params p n in
      let gradient = residual_gradient p n y in
      Numerics.Rls.update rls ~gradient ~error:((y -. predicted) /. scale);
      Numerics.Rls.set_theta rls (clamp_theta (Numerics.Rls.theta rls));
      t.n_rank_one <- t.n_rank_one + 1;
      let law = Scaling_law.of_array (Numerics.Rls.theta rls) in
      (match t.current_fit with
      | Some f -> t.current_fit <- Some { f with law }
      | None -> t.current_fit <- Some { law; r2 = Float.nan; rmse = Float.nan; observations = [||] });
      (* fallback: when the linearized updates no longer track the data,
         pay for one full multi-start fit and re-linearize there *)
      if recent_error t law > t.refit_threshold && distinct_counts t >= 2 then
        ignore (refit t : fit)

  let observe_all t obs = Array.iter (observe t) obs
end

(* the batch entry point is now a thin wrapper over the online state:
   buffer everything, then one full fit — byte-identical to the
   historical direct path (create draws nothing from [rng]; the single
   [refit] consumes it exactly as fit_multi_start always did) *)
let fit_observations ?(starts = 12) ~rng obs = Online.refit (Online.create ~starts ~rng obs)

let predict fit n = Scaling_law.eval_int fit.law n

let recommended_sizes ~n_min ~n_max ~points =
  if points < 2 then
    invalid_arg
      (Printf.sprintf "Fitting.recommended_sizes: points must be >= 2, got %d" points);
  if n_min < 1 then
    invalid_arg (Printf.sprintf "Fitting.recommended_sizes: n_min must be >= 1, got %d" n_min);
  if n_min > n_max then
    invalid_arg
      (Printf.sprintf "Fitting.recommended_sizes: n_min (%d) exceeds n_max (%d)" n_min n_max);
  if n_min = n_max then [ n_min ]
  else begin
    let ratio = float_of_int n_max /. float_of_int n_min in
    let raw =
      List.init points (fun i ->
          let t = float_of_int i /. float_of_int (points - 1) in
          int_of_float (Float.round (float_of_int n_min *. (ratio ** t))))
    in
    List.sort_uniq compare raw
  end
