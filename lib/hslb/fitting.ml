type fit = {
  law : Scaling_law.t;
  r2 : float;
  rmse : float;
  observations : (float * float) array;
}

let fit_observations ?(starts = 12) ~rng obs =
  let distinct = List.sort_uniq compare (Array.to_list (Array.map fst obs)) in
  if List.length distinct < 2 then
    invalid_arg "Fitting.fit_observations: need observations at 2 or more distinct node counts";
  Array.iter
    (fun (n, y) ->
      if n < 1. || y < 0. then invalid_arg "Fitting.fit_observations: invalid observation")
    obs;
  let eval p n = (p.(0) /. (n ** p.(2))) +. (p.(1) *. n) +. p.(3) in
  (* relative residuals: scaling curves span orders of magnitude between
     n=1 and the machine, and the allocation lands in the fast tail —
     absolute least squares would let the huge small-n times dominate
     and leave the tail poorly fitted *)
  let residual p = Array.map (fun (n, y) -> (eval p n -. y) /. Float.max y 1e-12) obs in
  let y_max = Array.fold_left (fun acc (_, y) -> Float.max acc y) 0. obs in
  let n_max = Array.fold_left (fun acc (n, _) -> Float.max acc n) 1. obs in
  (* box: c in [0, 2] — scaling exponents beyond 2 are not physical for
     this model and, with very few sample points, runaway c produces
     pathologically flat curves downstream; a, d bounded by observable
     magnitudes *)
  let lo = [| 0.; 0.; 0.; 0. |] in
  let hi = [| 1e3 *. y_max *. n_max; y_max; 2.; y_max *. 2. |] in
  let x0 = [| y_max; 1e-6; 1.; 0.01 *. y_max |] in
  let r = Numerics.Least_squares.fit_multi_start ~rng ~starts ~residual ~lo ~hi x0 in
  let law = Scaling_law.of_array r.Numerics.Least_squares.params in
  let observed = Array.map snd obs in
  let predicted = Array.map (fun (n, _) -> Scaling_law.eval law n) obs in
  {
    law;
    r2 = Numerics.Stats.r_squared ~observed ~predicted;
    rmse = Numerics.Stats.rmse ~observed ~predicted;
    observations = Array.copy obs;
  }

let predict fit n = Scaling_law.eval_int fit.law n

let recommended_sizes ~n_min ~n_max ~points =
  if n_min < 1 || n_max < n_min then invalid_arg "Fitting.recommended_sizes: bad range";
  if points < 2 then invalid_arg "Fitting.recommended_sizes: need at least 2 points";
  if n_min = n_max then [ n_min ]
  else begin
    let ratio = float_of_int n_max /. float_of_int n_min in
    let raw =
      List.init points (fun i ->
          let t = float_of_int i /. float_of_int (points - 1) in
          int_of_float (Float.round (float_of_int n_min *. (ratio ** t))))
    in
    List.sort_uniq compare raw
  end
