type config = {
  benchmark_points : int;
  benchmark_reps : int;
  objective : Objective.t;
  solver : Engine.Solver_choice.t;
  sweet_spots : int list option;
}

let default_config =
  {
    benchmark_points = 5;
    benchmark_reps = 2;
    objective = Objective.Min_max;
    solver = Engine.Solver_choice.Oa;
    sweet_spots = None;
  }

type hslb_plan = {
  monomer_fits : Classes.fitted list;
  dimer_fits : Classes.fitted list;
  allocation : Alloc_model.allocation;
  partition : Gddi.Group.partition;  (* monomer-phase partition *)
  dimer_partition : Gddi.Group.partition;  (* GDDI regroups at the step boundary *)
  monomer_assignment : int array;
  dimer_assignment : int array;
  predicted_monomer_time : float;
  predicted_dimer_time : float;
  predicted_total : float;
}

(* centralized dynamic dispatch serializes at the data server; the cost
   per task grows with the number of competing groups *)
let dispatch_latency ~groups = 2e-5 *. float_of_int groups

(* --- task classes: group tasks by (kind, work signature) --- *)

let class_key (t : Fmo.Task.t) =
  (* round work to 3 significant digits so fragments with identical
     composition and neighbourhood share a class *)
  let w = t.Fmo.Task.work_gflops in
  let mag = 10. ** Float.round (log10 (Float.max w 1e-12)) in
  let rounded = Float.round (w /. mag *. 1000.) *. mag /. 1000. in
  (Fmo.Task.kind_to_string t.Fmo.Task.kind, t.Fmo.Task.nbf, rounded)

let group_tasks tasks =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  Array.iter
    (fun (t : Fmo.Task.t) ->
      let key = class_key t in
      match Hashtbl.find_opt tbl key with
      | Some members -> members := t :: !members
      | None ->
        Hashtbl.add tbl key (ref [ t ]);
        order := key :: !order)
    tasks;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order |> List.rev

let classes_of ~rng machine tasks =
  List.map
    (fun members ->
      let rep = List.hd members in
      let kind, nbf, _ = class_key rep in
      let class_rng = Numerics.Rng.split rng in
      Classes.make
        ~name:(Printf.sprintf "%s-%dbf-%.0fGF" kind nbf rep.Fmo.Task.work_gflops)
        ~count:(List.length members)
        (fun ~nodes -> Fmo.Fmo_run.benchmark ~rng:class_rng machine rep ~nodes))
    (group_tasks tasks)

let monomer_class_indices (plan : Fmo.Task.plan) =
  let idx = Hashtbl.create 64 in
  List.iteri
    (fun ci members ->
      List.iter (fun (t : Fmo.Task.t) -> Hashtbl.replace idx t.Fmo.Task.id ci) members)
    (group_tasks plan.Fmo.Task.monomers);
  Array.map (fun (t : Fmo.Task.t) -> Hashtbl.find idx t.Fmo.Task.id) plan.Fmo.Task.monomers

let benchmark_sizes config ~n_total ~num_fragments =
  (* sample from 1 node up to the largest group a fragment could get *)
  let n_max = Stdlib.max 2 (Stdlib.min n_total (4 * n_total / Stdlib.max 1 num_fragments)) in
  Fitting.recommended_sizes ~n_min:1 ~n_max ~points:config.benchmark_points

let plan_hslb ~rng machine (plan : Fmo.Task.plan) ~n_total config =
  let num_fragments = Array.length plan.Fmo.Task.fragments in
  if n_total < num_fragments then
    invalid_arg "Fmo_app.plan_hslb: need at least one node per fragment";
  let sizes = benchmark_sizes config ~n_total ~num_fragments in
  (* steps 1+2: gather and fit, monomer and dimer classes *)
  let monomer_classes = classes_of ~rng machine plan.Fmo.Task.monomers in
  let dimer_classes = classes_of ~rng machine (Fmo.Task.correction_tasks plan) in
  let monomer_fits =
    Classes.gather_and_fit ~rng ~sizes ~reps:config.benchmark_reps monomer_classes
  in
  let dimer_fits =
    Classes.gather_and_fit ~rng ~sizes ~reps:config.benchmark_reps dimer_classes
  in
  (* step 3: allocation MINLP over monomer classes *)
  let specs =
    List.map
      (fun fc ->
        match config.sweet_spots with
        | Some allowed -> Alloc_model.spec_of ~allowed fc
        | None -> Alloc_model.spec_of fc)
      monomer_fits
  in
  let allocation =
    match
      Alloc_model.solve ~solver:config.solver ~objective:config.objective ~n_total specs
    with
    | Ok a -> a
    | Error st ->
      failwith
        (Printf.sprintf "Fmo_app.plan_hslb: monomer allocation %s"
           (Minlp.Solution.status_to_string st))
  in
  (* derive the partition: one group per fragment, sized by its class *)
  let fits_arr = Array.of_list monomer_fits in
  let class_of_task = Hashtbl.create 64 in
  List.iteri
    (fun ci members ->
      List.iter (fun (t : Fmo.Task.t) -> Hashtbl.replace class_of_task t.Fmo.Task.id ci) members)
    (group_tasks plan.Fmo.Task.monomers);
  let frag_class f = Hashtbl.find class_of_task plan.Fmo.Task.monomers.(f).Fmo.Task.id in
  let sizes_arr =
    Array.init num_fragments (fun f -> allocation.Alloc_model.nodes_per_task.(frag_class f))
  in
  (* spend any leftover budget on the slowest groups (paper: manual
     "sweet spot" tuning automated) — unless sizes are restricted *)
  (if config.sweet_spots = None then begin
     let used = Array.fold_left ( + ) 0 sizes_arr in
     let leftover = ref (n_total - used) in
     while !leftover > 0 do
       let slowest = ref 0 and slowest_t = ref neg_infinity in
       for f = 0 to num_fragments - 1 do
         let t = Classes.predicted_time fits_arr.(frag_class f) sizes_arr.(f) in
         if t > !slowest_t then begin
           slowest_t := t;
           slowest := f
         end
       done;
       sizes_arr.(!slowest) <- sizes_arr.(!slowest) + 1;
       decr leftover
     done
   end);
  let partition = Gddi.Group.of_sizes (Array.to_list sizes_arr) in
  let monomer_assignment = Array.init num_fragments Fun.id in
  (* dimer phase: GDDI regroups, so pick the best uniform regrouping by
     enumerating group counts against the fitted dimer curves (LPT
     assignment), and — when the budget allows one group per dimer —
     also try the per-task sizing MINLP; keep whichever predicts the
     smaller makespan *)
  let dimers = Fmo.Task.correction_tasks plan in
  let ndimers = Array.length dimers in
  let dimer_fits_arr = Array.of_list dimer_fits in
  let dimer_class_of = Hashtbl.create 256 in
  let dimer_groups = group_tasks dimers in
  List.iteri
    (fun ci members ->
      List.iter (fun (t : Fmo.Task.t) -> Hashtbl.replace dimer_class_of t.Fmo.Task.id ci) members)
    dimer_groups;
  let dimer_class task = Hashtbl.find dimer_class_of dimers.(task).Fmo.Task.id in
  let dimer_predicted ~task ~group =
    Classes.predicted_time dimer_fits_arr.(dimer_class task) group.Gddi.Group.nodes
  in
  let candidates =
    let cap = Stdlib.min n_total ndimers in
    let rec doubling g acc = if g > cap then acc else doubling (2 * g) (g :: acc) in
    List.sort_uniq compare (cap :: num_fragments :: doubling 1 [])
    |> List.filter (fun g -> g >= 1 && g <= cap)
  in
  let evaluate_uniform g =
    let part = Gddi.Group.even_partition ~total_nodes:n_total ~groups:g in
    let assignment = Gddi.Schedulers.lpt part ~predicted:dimer_predicted ~num_tasks:ndimers in
    let pred = Gddi.Schedulers.predicted_makespan part ~predicted:dimer_predicted assignment in
    (pred, part, assignment)
  in
  let best_uniform =
    List.fold_left
      (fun acc g ->
        let cand = evaluate_uniform g in
        match acc with
        | Some (p, _, _) when p <= (fun (q, _, _) -> q) cand -> acc
        | Some _ | None -> Some cand)
      None candidates
  in
  let sized_candidate =
    if n_total >= ndimers then begin
      match
        Alloc_model.solve ~solver:config.solver ~objective:config.objective ~n_total
          (List.map (fun fc -> Alloc_model.spec_of fc) dimer_fits)
      with
      | Ok alloc ->
        (* one group per dimer task, sized by its class *)
        let sizes = Array.init ndimers (fun t -> alloc.Alloc_model.nodes_per_task.(dimer_class t)) in
        let part = Gddi.Group.of_sizes (Array.to_list sizes) in
        let assignment = Array.init ndimers Fun.id in
        Some (alloc.Alloc_model.predicted_makespan, part, assignment)
      | Error _ -> None
    end
    else None
  in
  let dimer_pred, dimer_partition, dimer_assignment =
    match (best_uniform, sized_candidate) with
    | Some (p1, part1, a1), Some (p2, part2, a2) ->
      if p2 < p1 then (p2, part2, a2) else (p1, part1, a1)
    | Some c, None | None, Some c -> c
    | None, None -> invalid_arg "Fmo_app.plan_hslb: no dimer grouping candidate"
  in
  (* predicted times *)
  let sweep0 =
    let worst = ref 0. in
    for f = 0 to num_fragments - 1 do
      worst := Float.max !worst (Classes.predicted_time fits_arr.(frag_class f) sizes_arr.(f))
    done;
    !worst
  in
  let sweeps_factor =
    1.
    +. (float_of_int (plan.Fmo.Task.scc_iterations - 1) *. plan.Fmo.Task.scc_later_sweep_factor)
  in
  let predicted_monomer_time = sweep0 *. sweeps_factor in
  let predicted_dimer_time = dimer_pred in
  {
    monomer_fits;
    dimer_fits;
    allocation;
    partition;
    dimer_partition;
    monomer_assignment;
    dimer_assignment;
    predicted_monomer_time;
    predicted_dimer_time;
    predicted_total = predicted_monomer_time +. predicted_dimer_time;
  }

let run_hslb ~rng machine plan ~n_total config =
  let hp = plan_hslb ~rng machine plan ~n_total config in
  let run =
    Fmo.Fmo_run.run_plan ~rng machine plan
      ~monomer:
        { Fmo.Fmo_run.partition = hp.partition;
          schedule = Gddi.Sim.Static hp.monomer_assignment }
      ~dimer:
        { Fmo.Fmo_run.partition = hp.dimer_partition;
          schedule = Gddi.Sim.Static hp.dimer_assignment }
  in
  (hp, run)

let even_partition_for plan ~n_total ~groups =
  let num_fragments = Array.length plan.Fmo.Task.fragments in
  let groups = Stdlib.min (Option.value ~default:num_fragments groups) n_total in
  Gddi.Group.even_partition ~total_nodes:n_total ~groups

let run_dynamic ~rng machine plan ~n_total ?groups () =
  let partition = even_partition_for plan ~n_total ~groups in
  let dl = dispatch_latency ~groups:(Array.length partition) in
  Fmo.Fmo_run.run ~dispatch_latency:dl ~rng machine plan partition Fmo.Fmo_run.Dynamic

let run_semi_static ~rng machine plan ~n_total config =
  (* ablation: HSLB's partitions, but dynamic assignment inside each
     phase — isolates the value of group *sizing* from the value of a
     static task map *)
  let hp = plan_hslb ~rng machine plan ~n_total config in
  let dl = dispatch_latency ~groups:(Array.length hp.partition) in
  ( hp,
    Fmo.Fmo_run.run_plan ~dispatch_latency:dl ~rng machine plan
      ~monomer:{ Fmo.Fmo_run.partition = hp.partition; schedule = Gddi.Sim.Dynamic }
      ~dimer:{ Fmo.Fmo_run.partition = hp.dimer_partition; schedule = Gddi.Sim.Dynamic } )

let run_stealing ~rng machine plan ~n_total ?groups () =
  (* work stealing seeded by a round-robin map on even groups *)
  let num_fragments = Array.length plan.Fmo.Task.fragments in
  let groups = Stdlib.min (Option.value ~default:num_fragments groups) n_total in
  let partition = Gddi.Group.even_partition ~total_nodes:n_total ~groups in
  let dl = dispatch_latency ~groups in
  let monomer = Gddi.Schedulers.round_robin ~num_tasks:num_fragments ~num_groups:groups in
  let ndimers = Array.length (Fmo.Task.correction_tasks plan) in
  let dimer = Gddi.Schedulers.round_robin ~num_tasks:ndimers ~num_groups:groups in
  Fmo.Fmo_run.run_plan ~dispatch_latency:dl ~rng machine plan
    ~monomer:{ Fmo.Fmo_run.partition; schedule = Gddi.Sim.Stealing monomer }
    ~dimer:{ Fmo.Fmo_run.partition; schedule = Gddi.Sim.Stealing dimer }

let run_static_even ~rng machine plan ~n_total ?groups () =
  let partition = even_partition_for plan ~n_total ~groups in
  let ngroups = Array.length partition in
  let num_fragments = Array.length plan.Fmo.Task.fragments in
  let monomer = Gddi.Schedulers.round_robin ~num_tasks:num_fragments ~num_groups:ngroups in
  let dimers = Fmo.Task.correction_tasks plan in
  (* a-priori size heuristic: work ∝ nbf^2.7 regardless of kind *)
  let predicted ~task ~group =
    ignore group;
    match dimers.(task).Fmo.Task.kind with
    | Fmo.Task.Es_dimer -> 1e-6 *. float_of_int dimers.(task).Fmo.Task.nbf
    | Fmo.Task.Monomer | Fmo.Task.Scf_dimer | Fmo.Task.Scf_trimer ->
      float_of_int dimers.(task).Fmo.Task.nbf ** 2.7
  in
  let dimer =
    Gddi.Schedulers.lpt partition ~predicted ~num_tasks:(Array.length dimers)
  in
  Fmo.Fmo_run.run ~rng machine plan partition (Fmo.Fmo_run.Static { monomer; dimer })
