(** Persistence of fitted performance models.

    The paper notes the gather step "can be avoided altogether if
    reliable benchmarks are already available, for example, from
    previous experiments" — this module is that path: fitted classes
    round-trip through a small CSV format
    ([name,count,a,b,c,d] per line, [#] comments allowed) shared with
    the command-line tools. *)

(** [csv_name name] — [name] as a CSV field that {!of_csv} parses back
    verbatim: quoted (embedded double quotes doubled) when it contains a
    comma or quote, carries leading/trailing whitespace, starts with
    [#], or is empty; written bare otherwise. Shared with the CLI's
    [--save-class] append path so hand-grown files escape identically.
    @raise Invalid_argument on names containing a newline — they cannot
    round-trip through the line-based format. *)
val csv_name : string -> string

(** [to_csv fits] — serialize fitted classes. Names are escaped with
    {!csv_name}.
    @raise Invalid_argument on names containing a newline. *)
val to_csv : Classes.fitted list -> string

(** [of_csv_result text] — parse back. Quoted name fields (see
    {!csv_name}) are unescaped; unquoted fields are trimmed. The
    reconstructed classes sample
    from their own law (they carry no benchmark source); R² is reported
    as 1. A malformed line is reported as
    ["Model_store.of_csv: line N: <what>: <line>"] with a 1-based line
    number over the raw text (comments and blanks counted), so it
    matches editor positions. *)
val of_csv_result : string -> (Classes.fitted list, string) result

(** Raising variant of {!of_csv_result}.
    @raise Failure with the same message on malformed lines. *)
val of_csv : string -> Classes.fitted list

(** [save path fits] / [load path] — file variants. *)
val save : string -> Classes.fitted list -> unit

val load : string -> Classes.fitted list

(** [specs_of_csv ?allowed text] — convenience: parse and wrap as
    allocation specs. *)
val specs_of_csv : ?allowed:int list -> string -> Alloc_model.spec list
