(** HSLB step 3: the allocation MINLP and its solution.

    Decision variables are the nodes-per-task [n_c] for every task
    class; the model minimizes the makespan of one round in which each
    task runs in its own group (the paper's "few large tasks of diverse
    size" regime), subject to the node budget
    [Σ count_c · n_c <= N], optional "sweet-spot" restrictions of
    [n_c] to an allowed list (encoded with binaries + an SOS1 set, as
    the paper does for the ocean and atmosphere components), and the
    chosen objective.

    [Min_max] is a convex MINLP solved by {!Minlp.Oa} (or {!Minlp.Bnb}).
    [Max_min] is nonconvex in epigraph form, so it is solved by the
    customized bisection its structure admits (the time curves are
    decreasing in [n] up to their minimum). [Min_sum] is a separable
    convex resource-allocation problem and is solved exactly by greedy
    marginal allocation — the customized polynomial-time route the paper
    cites (Ibaraki & Katoh); its MINLP form remains available through
    {!build_minlp} for the solver benchmarks. *)

type spec = {
  fc : Classes.fitted;
  n_min : int;  (** smallest group size allowed for this class *)
  n_max : int;  (** largest group size allowed *)
  allowed : int list option;  (** sweet spots: restrict [n_c] to this list *)
}

(** [spec_of ?n_min ?n_max ?allowed fc] — defaults: [n_min = 1],
    [n_max] = node budget at solve time. *)
val spec_of : ?n_min:int -> ?n_max:int -> ?allowed:int list -> Classes.fitted -> spec

type allocation = {
  nodes_per_task : int array;  (** indexed like the spec list *)
  predicted_makespan : float;  (** max over classes of fitted time *)
  predicted_times : float array;  (** fitted per-class times *)
  status : Minlp.Solution.status;
      (** how the solve ended; [Optimal] for the exact
          bisection/greedy paths. [Feasible Audit_failed] marks a
          solver answer whose optimality certificate the independent
          auditor rejected (the point itself re-verified feasible) *)
  stats : Minlp.Solution.stats;  (** zero for the bisection path *)
  certificate : Engine.Certificate.t option;
      (** machine-checkable claim backing [status]: solver-emitted for
          the [Min_max] MINLP path ([Audit.check_minlp]-verifiable
          against {!build_minlp}'s problem), [Exact_method] for the
          bisection/greedy paths, [None] only for cache hits stored by
          older versions *)
}

(** [restrict_to_values b ~var values] — restrict an integer variable
    of a model under construction to a discrete value list using
    binaries linked by equality rows plus an SOS1 set (the paper's
    sweet-spot encoding). The list is deduplicated and sorted first.
    Returns the (binary variable, value) pairs in increasing value
    order. Shared with the layout models. *)
val restrict_to_values :
  Minlp.Problem.Builder.b -> var:int -> int list -> (int * int) list

(** [build_minlp ~objective ~n_total specs] — the MINLP (for
    [Min_max]/[Min_sum]; raises on [Max_min]). Returns the problem, the
    indices of the [n_c] variables, and a lifting function mapping a
    nodes-per-class vector to a full variable-space point (epigraph and
    sweet-spot binaries filled in) — the warm-start format the solvers
    take. Exposed for the solver-benchmark experiment E6. *)
val build_minlp :
  objective:Objective.t ->
  n_total:int ->
  spec list ->
  Minlp.Problem.t * int array * (int array -> float array)

(** [fingerprint ~objective ~n_total specs] — a canonical, injective
    serialization of the allocation instance, suitable as a
    {!Runtime.Cache} key. Class names are length-prefixed, law
    coefficients are printed round-trippably ([%.17g]), and [allowed]
    lists are sorted and deduplicated first (matching what the model
    does), so equal fingerprints imply instances the solver cannot tell
    apart. *)
val fingerprint : objective:Objective.t -> n_total:int -> spec list -> string

(** [solve ?strategy ?solver ?objective ?budget ?cancel ?warm_start
    ?trace ?cache ?race_report ~n_total specs] — full solve + decode,
    following the {!Engine.Solver_intf.S} labelled-argument convention
    ([?budget ?cancel ?warm_start ?trace]) with the model-layer knobs
    around it. Infeasibility (e.g. a node budget below one group per
    task) is returned as [Error], not raised.

    For [Min_max], a greedy min-sum allocation is computed automatically
    and used to warm-start the solver unless [warm_start] (a
    nodes-per-class vector) is given. The armed [budget] makes the solve
    interruptible: on exhaustion with an incumbent the allocation is
    returned with status [Budget_exhausted _]; without one, [Error
    (Budget_exhausted _)].

    [strategy] (default [`Auto]) selects how the [Min_max] MINLP is
    attacked. [`Auto] and [`Single s] run one solver ([`Auto] keeps the
    deterministic [?solver] default). [`Portfolio] races all of
    {!Engine.Solver_choice.all} in parallel domains over one shared
    budget: the first proven-optimal lane cancels the rest, and on
    budget exhaustion the best incumbent across lanes is returned. The
    portfolio's objective value matches the best single-solver run, but
    the winning {e point} may differ between timings — see
    docs/RUNTIME.md. [Max_min]/[Min_sum] always use their exact
    customized paths, whatever the strategy. When [race_report] is
    supplied, [`Portfolio] stores per-lane telemetry in it (it is reset
    to [None] by the non-racing paths).

    Every solver-path allocation carries a certificate; the [`Portfolio]
    path additionally runs the independent auditor on the winning lane's
    certificate before returning and demotes a rejected [Optimal] claim
    to [Feasible Audit_failed].

    [cache] memoizes solves across calls, keyed by {!fingerprint}. Only
    proven-[Optimal] results are stored (budget-exhausted incumbents are
    timing-dependent); a hit bypasses the solver entirely and returns
    the allocation bit-for-bit. *)
val solve :
  ?strategy:Runtime.Portfolio.strategy ->
  ?solver:Engine.Solver_choice.t ->
  ?objective:Objective.t ->
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:int array ->
  ?trace:Engine.Telemetry.t ->
  ?cache:allocation Runtime.Cache.t ->
  ?race_report:Engine.Run_report.race option ref ->
  n_total:int ->
  spec list ->
  (allocation, Minlp.Solution.status) result

(** [assignment_milp ~group_sizes ~duration ~num_tasks] — the second
    model family: groups fixed, assign tasks to groups minimizing
    predicted makespan (a pure MILP). Falls back to LPT when the node
    budget of the branch-and-bound is exhausted. Returns (task→group,
    predicted makespan). *)
val assignment_milp :
  ?max_nodes:int ->
  group_sizes:int array ->
  duration:(task:int -> group:int -> float) ->
  num_tasks:int ->
  unit ->
  int array * float
