(** HSLB step 2: fit the performance model to benchmark observations.

    Solves the constrained least-squares problem of Table II (line 10):
    minimize [Σ ((y_i − a/n_i^c − b·n_i − d)/y_i)²] with [a,b,c,d >= 0],
    by projected Levenberg–Marquardt with multi-start (the objective is
    non-convex; the paper notes different starts give different
    parameters but similar-quality allocations). Residuals are relative
    so the fast large-[n] tail — where allocations land — carries the
    same weight as the slow small-[n] region.

    Batch and online fitting share one surface: {!fit_observations} is a
    thin wrapper over {!Online.create} followed by one {!Online.refit},
    while long-lived callers keep an {!Online.t} and fold fresh
    observations in with rank-one updates instead of refitting. *)

type fit = {
  law : Scaling_law.t;
  r2 : float;  (** coefficient of determination on the observations *)
  rmse : float;
  observations : (float * float) array;  (** (nodes, seconds) pairs used *)
}

(** Incremental fit state over the normal-equations sufficient
    statistics of the linearized problem.

    [observe] performs a Sherman–Morrison rank-one update (see
    {!Numerics.Rls}) of the coefficient estimate at the current
    linearization point, projected back into the batch fitter's box
    ([a,b,d >= 0], [c ∈ \[0,2\]]). When the relative RMSE of the current
    law over the most recent observations exceeds [refit_threshold],
    the state falls back to a full multi-start {!refit} automatically
    and re-linearizes there. All observations are retained, so [refit]
    always reproduces the batch answer on the full history. *)
module Online : sig
  type t

  (** [create ?starts ?refit_threshold ~rng obs] — a state buffering
      [obs], not yet fitted. Draws nothing from [rng] and performs no
      validation until the first {!refit} (so the {!fit_observations}
      wrapper is byte-compatible with the historical batch path).
      [starts] (default 12) is the multi-start count used by [refit];
      [refit_threshold] (default 0.25) the relative-RMSE trigger for
      automatic refits during [observe].
      @raise Invalid_argument when [refit_threshold <= 0]. *)
  val create :
    ?starts:int ->
    ?refit_threshold:float ->
    rng:Numerics.Rng.t ->
    (float * float) array ->
    t

  (** [of_law ?starts ?refit_threshold ?prior ~rng law] — seed the
      estimate from an already-fitted law with no observation history
      (the serve-layer case: the model store holds coefficients, not
      raw benchmarks). [prior] is the ridge weight holding the seed
      (see {!Numerics.Rls.create}); subsequent [observe] calls update
      immediately via rank-one steps. *)
  val of_law :
    ?starts:int ->
    ?refit_threshold:float ->
    ?prior:float ->
    rng:Numerics.Rng.t ->
    Scaling_law.t ->
    t

  (** [observe t (n, y)] — fold in one benchmark point: buffered
      always; when an estimate exists (after [of_law] or a [refit]),
      also applies a rank-one update, then auto-refits if the
      linearization error exceeds the threshold.
      @raise Invalid_argument when [n < 1] or [y < 0]. *)
  val observe : t -> float * float -> unit

  (** [observe_all t obs] — [observe] each in order. *)
  val observe_all : t -> (float * float) array -> unit

  (** [refit t] — full multi-start batch fit over all retained
      observations (identical to the historical [fit_observations]
      on that data), then re-linearize the rank-one state at the
      solution. Raises the same [Invalid_argument]s as
      {!fit_observations} on insufficient or invalid data. *)
  val refit : t -> fit

  (** Current law.
      @raise Invalid_argument before any fit or seed exists. *)
  val law : t -> Scaling_law.t

  (** Current fit, if any. After rank-one updates the [law] field is
      live but [r2]/[rmse]/[observations] reflect the last full refit
      ([nan]/empty when seeded by [of_law]). *)
  val current : t -> fit option

  (** All retained observations, in insertion order. *)
  val observations : t -> (float * float) array

  (** Count of rank-one updates applied. *)
  val rank_one_updates : t -> int

  (** Count of full refits performed (explicit and automatic). *)
  val full_refits : t -> int
end

(** [fit_observations ~rng obs] — fit one task class.
    [obs] must contain at least 2 distinct node counts; the paper
    recommends >= 4 ("at least greater than four for each component").
    Equivalent to [Online.refit (Online.create ~rng obs)].
    @raise Invalid_argument otherwise (fewer than 2). *)
val fit_observations : ?starts:int -> rng:Numerics.Rng.t -> (float * float) array -> fit

(** [predict fit n] — fitted time on [n] nodes. *)
val predict : fit -> int -> float

(** [recommended_sizes ~n_min ~n_max ~points] — geometric spacing of
    benchmark node counts between the extremes, as section III-C
    recommends (smallest allowed, largest possible, a few in between to
    capture curvature).
    @raise Invalid_argument when [points < 2], [n_min < 1], or
    [n_min > n_max] — each with a message naming the offending value. *)
val recommended_sizes : n_min:int -> n_max:int -> points:int -> int list
