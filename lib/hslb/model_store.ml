(* RFC-4180-style quoting for the name field: a name containing a comma
   or double quote, carrying significant leading/trailing whitespace
   (which the unquoted parse trims away), starting with the comment
   character, or empty is wrapped in double quotes with embedded quotes
   doubled. Anything else is written bare, keeping existing files
   byte-identical. Newlines cannot survive a line-based format even
   quoted, so they are rejected rather than silently corrupted. *)
let needs_quoting name =
  name = ""
  || String.trim name <> name
  || String.exists (fun c -> c = ',' || c = '"') name
  || name.[0] = '#'

let csv_name name =
  if String.exists (fun c -> c = '\n' || c = '\r') name then
    invalid_arg
      (Printf.sprintf
         "Model_store.to_csv: class name %S contains a newline and cannot round-trip \
          through the line-based CSV format"
         name);
  if needs_quoting name then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' name) ^ "\""
  else name

let to_csv fits =
  let b = Buffer.create 256 in
  Buffer.add_string b "# name,count,a,b,c,d\n";
  List.iter
    (fun (fc : Classes.fitted) ->
      let law = fc.Classes.fit.Fitting.law in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%.17g,%.17g,%.17g,%.17g\n"
           (csv_name fc.Classes.cls.Classes.name)
           fc.Classes.cls.Classes.count law.Scaling_law.a law.Scaling_law.b law.Scaling_law.c
           law.Scaling_law.d))
    fits;
  Buffer.contents b

(* [split_fields line] — comma-split that understands [csv_name]'s
   quoting: a field opening with a double quote runs to the matching
   close quote (a doubled quote is a literal one, commas inside are
   data, surrounding whitespace is significant); unquoted fields are
   trimmed as before. *)
let split_fields line =
  let n = String.length line in
  let rec skip_spaces j =
    if j < n && (line.[j] = ' ' || line.[j] = '\t') then skip_spaces (j + 1) else j
  in
  let read_quoted start =
    let b = Buffer.create 16 in
    let rec go j =
      if j >= n then Error "unterminated quoted field"
      else if line.[j] = '"' then
        if j + 1 < n && line.[j + 1] = '"' then (
          Buffer.add_char b '"';
          go (j + 2))
        else Ok (Buffer.contents b, j + 1)
      else (
        Buffer.add_char b line.[j];
        go (j + 1))
    in
    go start
  in
  let read_unquoted start =
    let j = ref start in
    while !j < n && line.[!j] <> ',' do
      incr j
    done;
    (String.trim (String.sub line start (!j - start)), !j)
  in
  let rec fields acc i =
    let j = skip_spaces i in
    if j < n && line.[j] = '"' then
      match read_quoted (j + 1) with
      | Error _ as e -> e
      | Ok (f, k) ->
        let k = skip_spaces k in
        if k >= n then Ok (List.rev (f :: acc))
        else if line.[k] = ',' then fields (f :: acc) (k + 1)
        else Error "unexpected characters after closing quote"
    else
      let f, k = read_unquoted i in
      if k >= n then Ok (List.rev (f :: acc)) else fields (f :: acc) (k + 1)
  in
  fields [] 0

let parse_line ~lineno line =
  let fail what =
    Error (Printf.sprintf "Model_store.of_csv: line %d: %s: %s" lineno what line)
  in
  let number what conv s =
    match conv (String.trim s) with
    | v -> Ok v
    | exception Failure _ -> fail (Printf.sprintf "%s is not a number: %S" what s)
  in
  let ( let* ) = Result.bind in
  let* split = match split_fields line with Ok f -> Ok f | Error what -> fail what in
  match split with
  | [ name; count; a; b; c; d ] ->
    let* count =
      match int_of_string_opt count with
      | Some n -> Ok n
      | None -> fail (Printf.sprintf "count is not an integer: %S" count)
    in
    let* a = number "a" float_of_string a in
    let* b = number "b" float_of_string b in
    let* c = number "c" float_of_string c in
    let* d = number "d" float_of_string d in
    (match Scaling_law.make ~a ~b ~c ~d with
    | law ->
      let cls =
        match
          Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes)
        with
        | cls -> Ok cls
        | exception Invalid_argument m -> fail m
      in
      let* cls = cls in
      Ok
        {
          Classes.cls;
          fit =
            {
              Fitting.law;
              r2 = 1.;
              rmse = 0.;
              observations = [| (1., Scaling_law.eval_int law 1) |];
            };
        }
    | exception Invalid_argument m -> fail m)
  | fields ->
    fail (Printf.sprintf "expected 6 comma-separated fields, got %d" (List.length fields))

let of_csv_result text =
  (* line numbers are 1-based over the raw text, comments and blanks
     included, so they match what an editor shows *)
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let t = String.trim line in
      if t = "" || t.[0] = '#' then go (lineno + 1) acc rest
      else (
        match parse_line ~lineno line with
        | Ok fc -> go (lineno + 1) (fc :: acc) rest
        | Error _ as e -> e)
  in
  go 1 [] (String.split_on_char '\n' text)

let of_csv text =
  match of_csv_result text with Ok fits -> fits | Error msg -> failwith msg

let save path fits =
  let oc = open_out path in
  (try output_string oc (to_csv fits)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_csv text

let specs_of_csv ?allowed text =
  List.map
    (fun fc ->
      match allowed with
      | Some values -> Alloc_model.spec_of ~allowed:values fc
      | None -> Alloc_model.spec_of fc)
    (of_csv text)
