(** HSLB applied to the FMO workload — the paper's headline system.

    Ties the four steps together for an FMO2 plan on a simulated
    machine: derive task classes (fragments grouped by basis size),
    gather benchmarks, fit, solve the allocation MINLP for the monomer
    phase, derive the group partition and static assignments (dimer
    phase via LPT on the fitted dimer curves), and execute. Also
    provides the baselines HSLB is compared against: stock dynamic load
    balancing and even-static. *)

type config = {
  benchmark_points : int;  (** node counts sampled per class (paper: >= 4) *)
  benchmark_reps : int;  (** repetitions per node count *)
  objective : Objective.t;
  solver : Engine.Solver_choice.t;
  sweet_spots : int list option;  (** restrict group sizes to this list *)
}

val default_config : config

type hslb_plan = {
  monomer_fits : Classes.fitted list;  (** one per fragment class *)
  dimer_fits : Classes.fitted list;
  allocation : Alloc_model.allocation;
  partition : Gddi.Group.partition;  (** monomer-phase partition *)
  dimer_partition : Gddi.Group.partition;
      (** dimer-phase partition — GDDI regroups at the FMO step boundary *)
  monomer_assignment : int array;
  dimer_assignment : int array;
  predicted_monomer_time : float;  (** all SCC sweeps *)
  predicted_dimer_time : float;
  predicted_total : float;
}

(** [monomer_class_indices plan] — for each fragment, the index of its
    task class (ordered like [monomer_fits] / the allocation's
    [nodes_per_task]). *)
val monomer_class_indices : Fmo.Task.plan -> int array

(** [dispatch_latency ~groups] — per-task dynamic-dispatch cost model
    (centralized counter contention grows with group count). *)
val dispatch_latency : groups:int -> float

(** [plan_hslb ~rng machine plan ~n_total config] — HSLB steps 1–3.
    The benchmark [rng] stream is independent of execution noise.
    Requires [n_total >= number of fragments] (one group per fragment). *)
val plan_hslb :
  rng:Numerics.Rng.t -> Machine.t -> Fmo.Task.plan -> n_total:int -> config -> hslb_plan

(** [run_hslb ~rng machine plan ~n_total config] — steps 1–4; returns
    the planning record and the executed run. *)
val run_hslb :
  rng:Numerics.Rng.t ->
  Machine.t ->
  Fmo.Task.plan ->
  n_total:int ->
  config ->
  hslb_plan * Fmo.Fmo_run.result

(** [run_dynamic ~rng machine plan ~n_total ?groups ()] — stock
    GDDI dynamic balancing on an even partition ([groups] defaults to
    the fragment count, the common GAMESS choice). *)
val run_dynamic :
  rng:Numerics.Rng.t ->
  Machine.t ->
  Fmo.Task.plan ->
  n_total:int ->
  ?groups:int ->
  unit ->
  Fmo.Fmo_run.result

(** [run_semi_static ~rng machine plan ~n_total config] — ablation:
    HSLB's group sizing but dynamic task assignment inside each phase.
    Isolates the value of sizing from the value of the static map. *)
val run_semi_static :
  rng:Numerics.Rng.t ->
  Machine.t ->
  Fmo.Task.plan ->
  n_total:int ->
  config ->
  hslb_plan * Fmo.Fmo_run.result

(** [run_stealing ~rng machine plan ~n_total ?groups ()] — work-stealing
    baseline: even partition, round-robin seed map, idle groups steal
    from the longest queue (the DLB family the paper's introduction
    surveys). *)
val run_stealing :
  rng:Numerics.Rng.t ->
  Machine.t ->
  Fmo.Task.plan ->
  n_total:int ->
  ?groups:int ->
  unit ->
  Fmo.Fmo_run.result

(** [run_static_even ~rng machine plan ~n_total ?groups ()] — even
    partition with round-robin monomers and LPT dimers ranked by the
    practitioner's a-priori size estimate (nbf^2.7 work heuristic). *)
val run_static_even :
  rng:Numerics.Rng.t ->
  Machine.t ->
  Fmo.Task.plan ->
  n_total:int ->
  ?groups:int ->
  unit ->
  Fmo.Fmo_run.result
