(* Tests for the simulated machine and the scaling-law family. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let test_machine_make () =
  let m = Machine.make ~name:"test" ~num_nodes:100 () in
  Alcotest.(check int) "nodes" 100 m.Machine.num_nodes;
  Alcotest.(check int) "cores" 400 (Machine.cores m);
  Alcotest.check_raises "bad nodes" (Invalid_argument "Machine.make: num_nodes must be positive")
    (fun () -> ignore (Machine.make ~name:"x" ~num_nodes:0 ()))

let test_intrepid () =
  Alcotest.(check int) "intrepid nodes" 40_960 Machine.intrepid.Machine.num_nodes;
  Alcotest.(check int) "intrepid cores" 163_840 (Machine.cores Machine.intrepid)

let test_with_noise () =
  let m = Machine.with_noise Machine.intrepid 0.5 in
  check_float "noise" 0.5 m.Machine.noise_sigma;
  Alcotest.(check string) "name preserved" "intrepid" m.Machine.name

let test_law_eval () =
  let law = Scaling_law.make ~a:100. ~b:0.01 ~c:1. ~d:5. in
  check_float "n=1" 105.01 (Scaling_law.eval law 1.);
  check_float "n=10" ((100. /. 10.) +. 0.1 +. 5.) (Scaling_law.eval law 10.);
  check_float "int" (Scaling_law.eval law 4.) (Scaling_law.eval_int law 4)

let test_law_validation () =
  Alcotest.check_raises "negative a"
    (Invalid_argument "Scaling_law.make: coefficients must be non-negative") (fun () ->
      ignore (Scaling_law.make ~a:(-1.) ~b:0. ~c:1. ~d:0.));
  Alcotest.check_raises "n < 1" (Invalid_argument "Scaling_law.eval: n must be >= 1") (fun () ->
      ignore (Scaling_law.eval (Scaling_law.make ~a:1. ~b:0. ~c:1. ~d:0.) 0.5))

let test_law_monotone_when_b_zero () =
  let law = Scaling_law.make ~a:50. ~b:0. ~c:0.9 ~d:1. in
  let prev = ref infinity in
  for n = 1 to 100 do
    let t = Scaling_law.eval_int law n in
    if t > !prev +. 1e-12 then Alcotest.failf "not decreasing at n=%d" n;
    prev := t
  done

let test_optimal_nodes () =
  (* with b > 0 the curve is U-shaped; optimum where -ca/n^{c+1} + b = 0 *)
  let law = Scaling_law.make ~a:100. ~b:0.05 ~c:1. ~d:0. in
  (* 100/n² = 0.05 -> n = sqrt(2000) ≈ 44.7 *)
  let n = Scaling_law.optimal_nodes law ~max_nodes:1000. in
  check_float ~eps:1e-3 "argmin" (sqrt 2000.) n;
  (* with b = 0, more nodes always helps *)
  let law0 = Scaling_law.make ~a:100. ~b:0. ~c:1. ~d:0. in
  check_float "b=0 takes max" 1000. (Scaling_law.optimal_nodes law0 ~max_nodes:1000.)

let test_law_roundtrip () =
  let law = Scaling_law.make ~a:1. ~b:2. ~c:0.5 ~d:3. in
  let law' = Scaling_law.of_array (Scaling_law.to_array law) in
  check_float "a" law.Scaling_law.a law'.Scaling_law.a;
  check_float "b" law.Scaling_law.b law'.Scaling_law.b;
  check_float "c" law.Scaling_law.c law'.Scaling_law.c;
  check_float "d" law.Scaling_law.d law'.Scaling_law.d

let test_derivative () =
  let law = Scaling_law.make ~a:100. ~b:0.05 ~c:1. ~d:0. in
  let n = 10. in
  let numeric =
    (Scaling_law.eval law (n +. 1e-5) -. Scaling_law.eval law (n -. 1e-5)) /. 2e-5
  in
  check_float ~eps:1e-5 "matches numeric" numeric (Scaling_law.derivative law n)

(* ---------- Topology ---------- *)

let test_topology_basics () =
  let t = Topology.make ~x:4 ~y:4 ~z:4 in
  Alcotest.(check int) "nodes" 64 (Topology.num_nodes t);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t);
  (* z-major: id 1 is (0,0,1) *)
  let x, y, z = Topology.coords t 1 in
  Alcotest.(check (list int)) "coords" [ 0; 0; 1 ] [ x; y; z ];
  Alcotest.(check int) "self distance" 0 (Topology.distance t 5 5);
  (* wraparound: (0,0,0) to (0,0,3) is 1 hop on a ring of 4 *)
  Alcotest.(check int) "wraparound" 1 (Topology.distance t 0 3)

let test_topology_for_nodes () =
  let t = Topology.for_nodes 512 in
  Alcotest.(check bool) "capacity" true (Topology.num_nodes t >= 512);
  Alcotest.check_raises "bad id" (Invalid_argument "Topology.coords: id out of range")
    (fun () -> ignore (Topology.coords t (Topology.num_nodes t)))

let test_placement_compact_beats_scattered () =
  let t = Topology.make ~x:8 ~y:8 ~z:8 in
  let sizes = List.init 8 (fun _ -> 64) in
  let dia placement =
    List.fold_left
      (fun acc g -> Stdlib.max acc (Topology.group_diameter t g))
      0
      (Topology.place t ~placement ~sizes)
  in
  let dc = dia Topology.Compact and ds = dia Topology.Scattered in
  Alcotest.(check bool) "compact tighter" true (dc < ds);
  (* 64 nodes as a 4x4x4 cuboid on rings of 8: 3 hops per axis *)
  Alcotest.(check int) "cuboid diameter" 9 dc

let test_placement_covers_all_requested () =
  let t = Topology.make ~x:4 ~y:4 ~z:4 in
  List.iter
    (fun placement ->
      let groups = Topology.place t ~placement ~sizes:[ 8; 8; 8 ] in
      let all = List.concat_map Array.to_list groups in
      Alcotest.(check int) "24 ids" 24 (List.length all);
      Alcotest.(check int) "no duplicates" 24 (List.length (List.sort_uniq compare all));
      List.iter
        (fun id -> Alcotest.(check bool) "valid id" true (id >= 0 && id < 64))
        all)
    [ Topology.Compact; Topology.Scattered ]

let test_placement_validation () =
  let t = Topology.make ~x:2 ~y:2 ~z:2 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Topology.place: more nodes requested than available") (fun () ->
      ignore (Topology.place t ~placement:Topology.Compact ~sizes:[ 9 ]))

let test_comm_factor_monotone () =
  let t = Topology.make ~x:8 ~y:8 ~z:8 in
  let singleton = Topology.comm_factor t [| 0 |] ~alpha:40. in
  Alcotest.(check (float 1e-12)) "singleton is 1" 1. singleton;
  let spread = Topology.comm_factor t [| 0; Topology.num_nodes t - 1 |] ~alpha:40. in
  Alcotest.(check bool) "spread > 1" true (spread > 1.)

let prop_optimal_is_minimum =
  QCheck.Test.make ~name:"optimal_nodes is a minimum over the integer range" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let law =
        Scaling_law.make
          ~a:(Numerics.Rng.uniform rng ~lo:10. ~hi:1000.)
          ~b:(Numerics.Rng.uniform rng ~lo:0.001 ~hi:0.1)
          ~c:(Numerics.Rng.uniform rng ~lo:0.5 ~hi:1.2)
          ~d:(Numerics.Rng.uniform rng ~lo:0. ~hi:5.)
      in
      let n_star = Scaling_law.optimal_nodes law ~max_nodes:500. in
      let t_star = Scaling_law.eval law n_star in
      (* no integer point beats the continuous optimum by more than rounding *)
      let ok = ref true in
      for n = 1 to 500 do
        if Scaling_law.eval_int law n < t_star -. 1e-6 then ok := false
      done;
      !ok)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_optimal_is_minimum ] in
  Alcotest.run "machine"
    [
      ( "machine",
        [
          Alcotest.test_case "make" `Quick test_machine_make;
          Alcotest.test_case "intrepid" `Quick test_intrepid;
          Alcotest.test_case "with_noise" `Quick test_with_noise;
        ] );
      ( "scaling_law",
        [
          Alcotest.test_case "eval" `Quick test_law_eval;
          Alcotest.test_case "validation" `Quick test_law_validation;
          Alcotest.test_case "monotone" `Quick test_law_monotone_when_b_zero;
          Alcotest.test_case "optimal nodes" `Quick test_optimal_nodes;
          Alcotest.test_case "array roundtrip" `Quick test_law_roundtrip;
          Alcotest.test_case "derivative" `Quick test_derivative;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "for_nodes" `Quick test_topology_for_nodes;
          Alcotest.test_case "compact beats scattered" `Quick
            test_placement_compact_beats_scattered;
          Alcotest.test_case "covers requested" `Quick test_placement_covers_all_requested;
          Alcotest.test_case "validation" `Quick test_placement_validation;
          Alcotest.test_case "comm factor" `Quick test_comm_factor_monotone;
        ] );
      ("properties", qsuite);
    ]
