(* Unit and property tests for the numerics library. *)

open Numerics

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a +. Float.abs b)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Vec ---------- *)

let test_vec_basic () =
  let u = [| 1.; 2.; 3. |] and v = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vec.add u v);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vec.sub u v);
  check_float "dot" 32. (Vec.dot u v);
  check_float "norm2" (sqrt 14.) (Vec.norm2 u);
  check_float "norm_inf" 3. (Vec.norm_inf u);
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.; 9.; 12. |] (Vec.axpy 2. u v);
  check_float "sum" 6. (Vec.sum u);
  check_float "mean" 2. (Vec.mean u);
  Alcotest.(check int) "argmax" 2 (Vec.argmax u);
  Alcotest.(check int) "argmin" 0 (Vec.argmin u)

let test_vec_clamp () =
  let lo = [| 0.; 0. |] and hi = [| 1.; 1. |] in
  Alcotest.(check (array (float 1e-12)))
    "clamp" [| 0.; 1. |]
    (Vec.clamp ~lo ~hi [| -5.; 7. |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch" (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_kahan () =
  let n = 100_000 in
  let v = Array.make (n + 1) 1e-11 in
  v.(0) <- 1.;
  check_float ~eps:1e-12 "kahan sum" (1. +. (1e-11 *. float_of_int n)) (Vec.sum v)

(* ---------- Mat ---------- *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  Alcotest.(check bool) "mul"
    true
    (Mat.equal ~eps:1e-12 c (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |]))

let test_mat_solve () =
  let a = Mat.of_arrays [| [| 4.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 1.; 2. |] in
  let x = Mat.solve a b in
  let ax = Mat.mul_vec a x in
  Alcotest.(check bool) "residual" true (Vec.equal ~eps:1e-10 ax b)

let test_mat_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Mat.Singular (fun () -> ignore (Mat.solve a [| 1.; 1. |]))

let test_mat_det () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "det" (-2.) (Mat.det a);
  check_float "det singular" 0. (Mat.det (Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |]))

let test_mat_inverse () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 1. |] |] in
  let ainv = Mat.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true (Mat.equal ~eps:1e-10 (Mat.mul a ainv) (Mat.identity 2))

let test_cholesky () =
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let l = Mat.cholesky a in
  Alcotest.(check bool) "L Lᵀ = A" true
    (Mat.equal ~eps:1e-10 (Mat.mul l (Mat.transpose l)) a);
  let x = Mat.cholesky_solve l [| 2.; 1. |] in
  Alcotest.(check bool) "solve" true (Vec.equal ~eps:1e-10 (Mat.mul_vec a x) [| 2.; 1. |])

let test_cholesky_not_spd () =
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  Alcotest.check_raises "not spd" Mat.Singular (fun () -> ignore (Mat.cholesky a))

let test_qr () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let q, r = Mat.qr a in
  Alcotest.(check bool) "Q orthogonal" true
    (Mat.equal ~eps:1e-10 (Mat.mul (Mat.transpose q) q) (Mat.identity 3));
  Alcotest.(check bool) "QR = A" true (Mat.equal ~eps:1e-10 (Mat.mul q r) a)

let test_least_squares_qr () =
  (* fit y = 2x + 1 exactly *)
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |] in
  let b = [| 3.; 5.; 7. |] in
  let x = Mat.solve_least_squares a b in
  Alcotest.(check bool) "exact fit" true (Vec.equal ~eps:1e-9 x [| 1.; 2. |])

let prop_lu_roundtrip =
  QCheck.Test.make ~name:"lu solve roundtrip" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let a =
        Mat.init n n (fun i j ->
            let base = Rng.uniform rng ~lo:(-1.) ~hi:1. in
            if i = j then base +. (float_of_int n *. 2.) else base)
      in
      let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-10.) ~hi:10.) in
      let x = Mat.solve a b in
      Vec.equal ~eps:1e-6 (Mat.mul_vec a x) b)

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean a);
  check_float "variance" (32. /. 7.) (Stats.variance a);
  check_float "median" 4.5 (Stats.median a);
  check_float "q0" 2. (Stats.quantile 0. a);
  check_float "q1" 9. (Stats.quantile 1. a)

let test_r_squared () =
  let observed = [| 1.; 2.; 3.; 4. |] in
  check_float "perfect" 1. (Stats.r_squared ~observed ~predicted:observed);
  let predicted = [| 2.5; 2.5; 2.5; 2.5 |] in
  check_float "mean model" 0. (Stats.r_squared ~observed ~predicted)

let test_linear_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = [| 1.; 3.; 5.; 7. |] in
  let intercept, slope = Stats.linear_fit xs ys in
  check_float "intercept" 1. intercept;
  check_float "slope" 2. slope

let test_errors () =
  let observed = [| 1.; 2. |] and predicted = [| 2.; 4. |] in
  check_float "rmse" (sqrt 2.5) (Stats.rmse ~observed ~predicted);
  check_float "mae" 1.5 (Stats.mae ~observed ~predicted);
  check_float "mape" 100. (Stats.mape ~observed ~predicted)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a 1.) (Rng.float b 1.)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let xs = Array.init 10 (fun _ -> Rng.float a 1.) in
  let ys = Array.init 10 (fun _ -> Rng.float c 1.) in
  Alcotest.(check bool) "different" true (xs <> ys)

let test_rng_normal_moments () =
  let rng = Rng.create 1234 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng ~mu:3. ~sigma:2.) in
  check_float ~eps:0.05 "mean" 3. (Stats.mean xs);
  check_float ~eps:0.05 "stddev" 2. (Stats.stddev xs)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int in range" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 100000))
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

(* ---------- Num_diff ---------- *)

let test_gradient () =
  let f x = (x.(0) *. x.(0)) +. (3. *. x.(0) *. x.(1)) in
  let g = Num_diff.gradient f [| 2.; 5. |] in
  check_float ~eps:1e-5 "df/dx" 19. g.(0);
  check_float ~eps:1e-5 "df/dy" 6. g.(1)

let test_jacobian () =
  let f x = [| x.(0) *. x.(1); x.(0) +. x.(1) |] in
  let j = Num_diff.jacobian f [| 2.; 3. |] in
  check_float ~eps:1e-5 "j00" 3. (Mat.get j 0 0);
  check_float ~eps:1e-5 "j01" 2. (Mat.get j 0 1);
  check_float ~eps:1e-5 "j10" 1. (Mat.get j 1 0);
  check_float ~eps:1e-5 "j11" 1. (Mat.get j 1 1)

let test_hessian () =
  let f x = (x.(0) *. x.(0) *. x.(1)) +. (x.(1) *. x.(1)) in
  let h = Num_diff.hessian f [| 1.; 2. |] in
  check_float ~eps:1e-3 "h00" 4. (Mat.get h 0 0);
  check_float ~eps:1e-3 "h01" 2. (Mat.get h 0 1);
  check_float ~eps:1e-3 "h11" 2. (Mat.get h 1 1)

(* ---------- Scalar_opt ---------- *)

let test_bisect () =
  let root = Scalar_opt.bisect (fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. in
  check_float ~eps:1e-9 "sqrt2" (sqrt 2.) root

let test_bisect_no_sign_change () =
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Scalar_opt.bisect: no sign change on interval") (fun () ->
      ignore (Scalar_opt.bisect (fun x -> (x *. x) +. 1.) ~lo:0. ~hi:1.))

let test_brent_min () =
  let x, fx = Scalar_opt.brent_min (fun x -> ((x -. 1.5) ** 2.) +. 0.25) ~lo:(-10.) ~hi:10. in
  check_float ~eps:1e-6 "argmin" 1.5 x;
  check_float ~eps:1e-6 "min" 0.25 fx

let test_golden_min () =
  let x, _ = Scalar_opt.golden_min (fun x -> Float.abs (x -. 0.3)) ~lo:0. ~hi:1. in
  check_float ~eps:1e-6 "argmin" 0.3 x

(* ---------- Least_squares ---------- *)

(* the paper's performance model: T(n) = a/n^c + b n + d *)
let perf_model p n = (p.(0) /. (n ** p.(2))) +. (p.(1) *. n) +. p.(3)
let synth_data params ns = Array.map (fun n -> perf_model params n) ns

let test_lm_exact_recovery () =
  let truth = [| 120.; 0.01; 0.9; 3. |] in
  let ns = [| 1.; 2.; 4.; 8.; 16.; 32.; 64. |] in
  let ys = synth_data truth ns in
  let residual p = Array.mapi (fun i n -> perf_model p n -. ys.(i)) ns in
  let lo = Array.make 4 0. and hi = Array.make 4 infinity in
  let r = Least_squares.fit ~residual ~lo ~hi [| 50.; 0.1; 0.5; 1. |] in
  Alcotest.(check bool) "converged" true r.converged;
  (* prediction quality matters more than parameter identity *)
  Array.iter
    (fun n -> check_float ~eps:1e-3 "prediction" (perf_model truth n) (perf_model r.params n))
    ns

let test_lm_respects_bounds () =
  let residual p = [| p.(0) +. 5. |] in
  (* unconstrained optimum is -5; box forces 0 *)
  let r = Least_squares.fit ~residual ~lo:[| 0. |] ~hi:[| 10. |] [| 3. |] in
  Alcotest.(check bool) "at bound" true (r.params.(0) >= 0.);
  check_float ~eps:1e-6 "clamped to zero" 0. r.params.(0)

let test_lm_multistart_beats_single () =
  let rng = Rng.create 99 in
  let truth = [| 500.; 0.001; 1.2; 10. |] in
  let ns = [| 1.; 4.; 16.; 64.; 256. |] in
  let ys = synth_data truth ns in
  let residual p = Array.mapi (fun i n -> perf_model p n -. ys.(i)) ns in
  let lo = Array.make 4 0. and hi = Array.make 4 infinity in
  let r =
    Least_squares.fit_multi_start ~rng ~starts:8 ~residual ~lo ~hi [| 1.; 1.; 0.1; 1. |]
  in
  Alcotest.(check bool) "good fit" true (r.residual_norm < 1e-2 *. Vec.norm2 ys)

let prop_lm_stays_in_box =
  QCheck.Test.make ~name:"LM result stays inside box" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let truth =
        [| Rng.uniform rng ~lo:10. ~hi:1000.; Rng.uniform rng ~lo:0. ~hi:0.1;
           Rng.uniform rng ~lo:0.5 ~hi:1.5; Rng.uniform rng ~lo:0. ~hi:20. |]
      in
      let ns = [| 1.; 2.; 8.; 32.; 128. |] in
      let ys = synth_data truth ns in
      let residual p = Array.mapi (fun i n -> perf_model p n -. ys.(i)) ns in
      let lo = Array.make 4 0. and hi = Array.make 4 1e6 in
      let r = Least_squares.fit ~residual ~lo ~hi [| 1.; 0.01; 1.; 1. |] in
      Array.for_all (fun x -> x >= 0. && x <= 1e6) r.params)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_lu_roundtrip; prop_rng_int_range; prop_lm_stays_in_box ]
  in
  Alcotest.run "numerics"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "clamp" `Quick test_vec_clamp;
          Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "kahan sum" `Quick test_vec_kahan;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "solve" `Quick test_mat_solve;
          Alcotest.test_case "singular" `Quick test_mat_singular;
          Alcotest.test_case "det" `Quick test_mat_det;
          Alcotest.test_case "inverse" `Quick test_mat_inverse;
          Alcotest.test_case "cholesky" `Quick test_cholesky;
          Alcotest.test_case "cholesky not spd" `Quick test_cholesky_not_spd;
          Alcotest.test_case "qr" `Quick test_qr;
          Alcotest.test_case "least squares" `Quick test_least_squares_qr;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats_basic;
          Alcotest.test_case "r_squared" `Quick test_r_squared;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "error measures" `Quick test_errors;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        ] );
      ( "num_diff",
        [
          Alcotest.test_case "gradient" `Quick test_gradient;
          Alcotest.test_case "jacobian" `Quick test_jacobian;
          Alcotest.test_case "hessian" `Quick test_hessian;
        ] );
      ( "scalar_opt",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "bisect no sign change" `Quick test_bisect_no_sign_change;
          Alcotest.test_case "brent min" `Quick test_brent_min;
          Alcotest.test_case "golden min" `Quick test_golden_min;
        ] );
      ( "least_squares",
        [
          Alcotest.test_case "exact recovery" `Quick test_lm_exact_recovery;
          Alcotest.test_case "respects bounds" `Quick test_lm_respects_bounds;
          Alcotest.test_case "multi-start" `Quick test_lm_multistart_beats_single;
        ] );
      ("properties", qsuite);
    ]
