test/test_minlp.mli:
