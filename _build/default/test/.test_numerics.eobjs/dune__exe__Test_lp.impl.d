test/test_lp.ml: Alcotest Array Float Fun List Lp Lp_problem Numerics QCheck QCheck_alcotest Simplex
