test/test_gddi.mli:
