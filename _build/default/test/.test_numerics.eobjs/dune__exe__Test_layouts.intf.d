test/test_layouts.mli:
