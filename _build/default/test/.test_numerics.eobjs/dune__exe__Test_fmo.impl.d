test/test_fmo.ml: Alcotest Array Basis Cost_model Element Float Fmo Fmo_run Fragment Fun Gddi Geometry List Machine Molecule Numerics Printf QCheck QCheck_alcotest Task
