test/test_hslb.ml: Alcotest Array Filename Float Fmo Format Gddi Hslb List Machine Numerics Printf QCheck QCheck_alcotest Scaling_law String Sys
