test/test_lp.mli:
