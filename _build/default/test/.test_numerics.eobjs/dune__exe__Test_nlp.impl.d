test/test_nlp.ml: Alcotest Array Auglag Bounded Float List Nlp Nlp_problem Numerics QCheck QCheck_alcotest Rng
