test/test_hslb.mli:
