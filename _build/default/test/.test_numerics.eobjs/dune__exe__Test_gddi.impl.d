test/test_gddi.ml: Alcotest Array Ds Float Gddi Group List Numerics QCheck QCheck_alcotest Schedulers Sim
