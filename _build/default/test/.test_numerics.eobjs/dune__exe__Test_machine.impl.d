test/test_machine.ml: Alcotest Array Float List Machine Numerics QCheck QCheck_alcotest Scaling_law Stdlib Topology
