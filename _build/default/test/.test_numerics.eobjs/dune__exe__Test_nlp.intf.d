test/test_nlp.mli:
