test/test_integration.ml: Alcotest Array Experiments Float Fmo Format Gddi Hslb Layouts List Machine Numerics
