test/test_minlp.ml: Alcotest Array Bnb Expr Float Format List Lp Milp Minlp Model_text Numerics Oa Oa_multi Presolve Printf Problem QCheck QCheck_alcotest Solution
