test/test_numerics.ml: Alcotest Array Float Least_squares List Mat Num_diff Numerics QCheck QCheck_alcotest Rng Scalar_opt Stats Vec
