test/test_fmo.mli:
