test/test_layouts.ml: Alcotest Array Cesm_data Component Float Hslb Layout_model Layouts List Numerics QCheck QCheck_alcotest Scaling_law Stdlib
