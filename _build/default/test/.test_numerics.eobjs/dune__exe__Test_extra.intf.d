test/test_extra.mli:
