test/test_extra.ml: Alcotest Array Experiments Float Fmo Format Gddi Hashtbl Hslb Layouts List Lp Machine Minlp Numerics Printf QCheck QCheck_alcotest Scaling_law String
