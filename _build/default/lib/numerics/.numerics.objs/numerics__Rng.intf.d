lib/numerics/rng.mli:
