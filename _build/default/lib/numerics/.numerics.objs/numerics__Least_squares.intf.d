lib/numerics/least_squares.mli: Rng Vec
