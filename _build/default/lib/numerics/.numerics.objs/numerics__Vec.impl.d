lib/numerics/vec.ml: Array Float Format Printf
