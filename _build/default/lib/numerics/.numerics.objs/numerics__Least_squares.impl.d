lib/numerics/least_squares.ml: Array Float Mat Num_diff Rng Vec
