lib/numerics/scalar_opt.ml: Float
