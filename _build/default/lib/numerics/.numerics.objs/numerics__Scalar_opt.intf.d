lib/numerics/scalar_opt.mli:
