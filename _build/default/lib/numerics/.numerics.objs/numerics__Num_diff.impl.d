lib/numerics/num_diff.ml: Array Float Mat
