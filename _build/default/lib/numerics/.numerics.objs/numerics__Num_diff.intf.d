lib/numerics/num_diff.mli: Mat Vec
