lib/numerics/mat.ml: Array Float Format Printf Stdlib
