lib/numerics/stats.mli:
