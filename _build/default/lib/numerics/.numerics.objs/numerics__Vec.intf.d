lib/numerics/vec.mli: Format
