let mean a = Vec.mean a

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let quantile q a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let s = Array.copy a in
  Array.sort compare s;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then s.(lo) else s.(lo) +. ((pos -. float_of_int lo) *. (s.(hi) -. s.(lo)))

let median a = quantile 0.5 a

let check_paired name a b =
  if Array.length a <> Array.length b then invalid_arg ("Stats." ^ name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let r_squared ~observed ~predicted =
  check_paired "r_squared" observed predicted;
  let m = mean observed in
  let ss_tot = ref 0. and ss_res = ref 0. in
  Array.iteri
    (fun i y ->
      ss_tot := !ss_tot +. ((y -. m) *. (y -. m));
      let e = y -. predicted.(i) in
      ss_res := !ss_res +. (e *. e))
    observed;
  if !ss_tot <= 0. then if !ss_res <= 0. then 1. else 0. else 1. -. (!ss_res /. !ss_tot)

let rmse ~observed ~predicted =
  check_paired "rmse" observed predicted;
  let acc = ref 0. in
  Array.iteri
    (fun i y ->
      let e = y -. predicted.(i) in
      acc := !acc +. (e *. e))
    observed;
  sqrt (!acc /. float_of_int (Array.length observed))

let mae ~observed ~predicted =
  check_paired "mae" observed predicted;
  let acc = ref 0. in
  Array.iteri (fun i y -> acc := !acc +. Float.abs (y -. predicted.(i))) observed;
  !acc /. float_of_int (Array.length observed)

let mape ~observed ~predicted =
  check_paired "mape" observed predicted;
  let acc = ref 0. and n = ref 0 in
  Array.iteri
    (fun i y ->
      if y <> 0. then begin
        acc := !acc +. Float.abs ((y -. predicted.(i)) /. y);
        incr n
      end)
    observed;
  if !n = 0 then 0. else 100. *. !acc /. float_of_int !n

let covariance a b =
  check_paired "covariance" a b;
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let ma = mean a and mb = mean b in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((a.(i) -. ma) *. (b.(i) -. mb))
    done;
    !acc /. float_of_int (n - 1)
  end

let pearson a b =
  let sa = stddev a and sb = stddev b in
  if sa <= 0. || sb <= 0. then 0. else covariance a b /. (sa *. sb)

let linear_fit xs ys =
  check_paired "linear_fit" xs ys;
  let vx = variance xs in
  if vx <= 0. then invalid_arg "Stats.linear_fit: xs are constant";
  let slope = covariance xs ys /. vx in
  let intercept = mean ys -. (slope *. mean xs) in
  (intercept, slope)
