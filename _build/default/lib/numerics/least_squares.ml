type result = { params : Vec.t; residual_norm : float; iterations : int; converged : bool }

let half_sq_norm r = 0.5 *. Vec.dot r r

let fit ?(max_iter = 200) ?(xtol = 1e-10) ?(gtol = 1e-10) ~residual ~lo ~hi x0 =
  let n = Array.length x0 in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Least_squares.fit: bound dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Least_squares.fit: lo > hi")
    lo;
  let x = ref (Vec.clamp ~lo ~hi (Vec.copy x0)) in
  let r = ref (residual !x) in
  let cost = ref (half_sq_norm !r) in
  let lambda = ref 1e-3 in
  let iters = ref 0 in
  let converged = ref false in
  while (not !converged) && !iters < max_iter do
    incr iters;
    let jac = Num_diff.jacobian residual !x in
    let g = Mat.tmul_vec jac !r in
    if Vec.norm_inf g < gtol then converged := true
    else begin
      (* J'J with Levenberg damping on the diagonal *)
      let jtj = Mat.mul (Mat.transpose jac) jac in
      let accepted = ref false in
      let tries = ref 0 in
      while (not !accepted) && !tries < 30 do
        incr tries;
        let a = Mat.copy jtj in
        for i = 0 to n - 1 do
          (* Marquardt scaling: damp proportionally to the diagonal *)
          Mat.set a i i (Mat.get a i i +. (!lambda *. Float.max 1e-12 (Mat.get jtj i i)))
        done;
        match Mat.solve a (Vec.scale (-1.) g) with
        | exception Mat.Singular -> lambda := !lambda *. 10.
        | step ->
          let x_new = Vec.clamp ~lo ~hi (Vec.add !x step) in
          let r_new = residual x_new in
          let cost_new = half_sq_norm r_new in
          if Float.is_nan cost_new || cost_new >= !cost then lambda := !lambda *. 10.
          else begin
            if Vec.dist2 x_new !x < xtol *. (1. +. Vec.norm2 !x) then converged := true;
            x := x_new;
            r := r_new;
            cost := cost_new;
            lambda := Float.max 1e-12 (!lambda /. 10.);
            accepted := true
          end
      done;
      if not !accepted then converged := true (* stalled: accept current point *)
    end
  done;
  { params = !x; residual_norm = Vec.norm2 !r; iterations = !iters; converged = !converged }

let log_uniform rng ~lo ~hi =
  (* sample multiplicatively when the box spans orders of magnitude *)
  let lo' = Float.max lo 1e-8 in
  let hi' = Float.max hi (lo' *. (1. +. 1e-9)) in
  if hi <= 0. then lo
  else exp (Rng.uniform rng ~lo:(log lo') ~hi:(log hi'))

let fit_multi_start ?(max_iter = 200) ~rng ~starts ~residual ~lo ~hi x0 =
  let n = Array.length x0 in
  let best = ref (fit ~max_iter ~residual ~lo ~hi x0) in
  for _ = 1 to starts do
    let cap = 1e6 in
    let start =
      Array.init n (fun i ->
          log_uniform rng ~lo:lo.(i) ~hi:(Float.min hi.(i) cap))
    in
    let candidate = fit ~max_iter ~residual ~lo ~hi start in
    if candidate.residual_norm < !best.residual_norm then best := candidate
  done;
  !best
