type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length u) (Array.length v))

let add u v =
  check_dims "add" u v;
  Array.init (Array.length u) (fun i -> u.(i) +. v.(i))

let sub u v =
  check_dims "sub" u v;
  Array.init (Array.length u) (fun i -> u.(i) -. v.(i))

let scale a v = Array.map (fun x -> a *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let dot u v =
  check_dims "dot" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dist2 u v = norm2 (sub u v)
let map = Array.map

let map2 f u v =
  check_dims "map2" u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

(* Kahan summation: the optimization loops sum many small residuals and
   plain left-to-right addition loses precision noticeably there. *)
let sum v =
  let s = ref 0. and c = ref 0. in
  for i = 0 to Array.length v - 1 do
    let y = v.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let clamp ~lo ~hi v =
  check_dims "clamp" lo v;
  check_dims "clamp" hi v;
  Array.init (Array.length v) (fun i -> Float.min hi.(i) (Float.max lo.(i) v.(i)))

let max_elt v =
  if Array.length v = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max v.(0) v

let min_elt v =
  if Array.length v = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min v.(0) v

let arg_extreme name better v =
  if Array.length v = 0 then invalid_arg name;
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let argmax v = arg_extreme "Vec.argmax: empty vector" (fun a b -> a > b) v
let argmin v = arg_extreme "Vec.argmin: empty vector" (fun a b -> a < b) v

let equal ~eps u v =
  Array.length u = Array.length v
  &&
  let ok = ref true in
  for i = 0 to Array.length u - 1 do
    if Float.abs (u.(i) -. v.(i)) > eps then ok := false
  done;
  !ok

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri (fun i x -> Format.fprintf fmt (if i = 0 then "%g" else "; %g") x) v;
  Format.fprintf fmt "|]"

let to_string v = Format.asprintf "%a" pp v
