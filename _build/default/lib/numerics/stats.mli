(** Descriptive statistics and goodness-of-fit measures.

    Used to judge the quality of performance-model fits (the paper
    reports R² "very close to 1 for each component") and to summarize
    simulated timing distributions. *)

val mean : float array -> float

(** Sample variance (divides by [n-1]); [0.] when fewer than 2 points. *)
val variance : float array -> float

val stddev : float array -> float

(** [quantile q a] — linear-interpolation quantile, [q] in [0,1].
    Does not mutate [a]. Raises [Invalid_argument] on empty input. *)
val quantile : float -> float array -> float

val median : float array -> float

(** [r_squared ~observed ~predicted] — coefficient of determination
    [1 - SS_res/SS_tot]. When all observations are equal, returns [1.]
    if predictions match exactly and [0.] otherwise. *)
val r_squared : observed:float array -> predicted:float array -> float

(** Root-mean-square error between paired samples. *)
val rmse : observed:float array -> predicted:float array -> float

(** Mean absolute error. *)
val mae : observed:float array -> predicted:float array -> float

(** Mean absolute percentage error (skips zero observations). *)
val mape : observed:float array -> predicted:float array -> float

(** Sample covariance of paired samples (divides by [n-1]). *)
val covariance : float array -> float array -> float

(** Pearson correlation coefficient; [0.] when either side is constant. *)
val pearson : float array -> float array -> float

(** [linear_fit xs ys] — ordinary least squares [(intercept, slope)].
    Requires at least two distinct [xs]. *)
val linear_fit : float array -> float array -> float * float
