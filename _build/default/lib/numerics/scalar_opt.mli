(** One-dimensional root finding and minimization. *)

(** [bisect ?tol ?max_iter f ~lo ~hi] — root of a continuous [f] with a
    sign change on [lo, hi]. @raise Invalid_argument when
    [f lo] and [f hi] have the same strict sign. *)
val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float

(** [brent_min ?tol ?max_iter f ~lo ~hi] — minimizer of a unimodal [f]
    on [lo, hi] via golden-section with parabolic interpolation.
    Returns the pair (minimizer, minimum value). *)
val brent_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float * float

(** [golden_min ?tol f ~lo ~hi] — pure golden-section search. *)
val golden_min : ?tol:float -> (float -> float) -> lo:float -> hi:float -> float * float
