(** Dense row-major matrices with the factorizations the solvers need.

    Sizes in this project are small (tens to a few hundred rows), so the
    implementations favour clarity and numerical robustness (partial
    pivoting everywhere) over blocking. *)

type t

(** [create rows cols x] — a [rows]×[cols] matrix filled with [x]. *)
val create : int -> int -> float -> t

(** [init rows cols f] — entry [(i,j)] is [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [of_arrays a] builds a matrix from an array of equal-length rows.
    Raises [Invalid_argument] on ragged or empty input. *)
val of_arrays : float array array -> t

val to_arrays : t -> float array array
val identity : int -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> Vec.t

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> Vec.t

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** [mul a b] — matrix product; inner dimensions must agree. *)
val mul : t -> t -> t

(** [mul_vec m v] — matrix-vector product. *)
val mul_vec : t -> Vec.t -> Vec.t

(** [tmul_vec m v] — [mᵀ v] without forming the transpose. *)
val tmul_vec : t -> Vec.t -> Vec.t

(** LU factorization with partial pivoting of a square matrix.
    @raise Singular when a pivot underflows. *)
type lu

exception Singular

val lu_decompose : t -> lu

(** [lu_solve lu b] solves [A x = b] for the factored [A]. *)
val lu_solve : lu -> Vec.t -> Vec.t

(** [solve a b] — one-shot [lu_solve (lu_decompose a) b]. *)
val solve : t -> Vec.t -> Vec.t

(** [det a] via LU; [0.] when singular. *)
val det : t -> float

(** [inverse a]. @raise Singular on singular input. *)
val inverse : t -> t

(** Cholesky factor [L] (lower-triangular, [A = L Lᵀ]) of a symmetric
    positive-definite matrix. @raise Singular when not SPD. *)
val cholesky : t -> t

(** [cholesky_solve l b] solves [A x = b] given the Cholesky factor. *)
val cholesky_solve : t -> Vec.t -> Vec.t

(** Householder QR: [qr a] returns [(q, r)] with [a = q r], [q] orthogonal
    ([rows a]×[rows a]) and [r] upper-trapezoidal. Requires
    [rows a >= cols a]. *)
val qr : t -> t * t

(** [solve_least_squares a b] — minimum-residual solution of the
    overdetermined system [A x ≈ b] via QR. *)
val solve_least_squares : t -> Vec.t -> Vec.t

val equal : eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
