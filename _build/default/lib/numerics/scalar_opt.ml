let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then invalid_arg "Scalar_opt.bisect: no sign change on interval"
  else begin
    let a = ref lo and b = ref hi and fa = ref flo in
    let iters = ref 0 in
    while !b -. !a > tol && !iters < max_iter do
      incr iters;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0. then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0. then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    0.5 *. (!a +. !b)
  end

let golden = (3. -. sqrt 5.) /. 2.

let golden_min ?(tol = 1e-10) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let x1 = ref (!a +. (golden *. (!b -. !a))) in
  let x2 = ref (!b -. (golden *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  while !b -. !a > tol *. (1. +. Float.abs !a +. Float.abs !b) do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !a +. (golden *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !b -. (golden *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

(* Brent's method: golden-section with a parabolic-interpolation shortcut. *)
let brent_min ?(tol = 1e-10) ?(max_iter = 200) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let x = ref (!a +. (golden *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0. and e = ref 0. in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && !iter < max_iter do
    incr iter;
    let m = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. 1e-12 in
    let tol2 = 2. *. tol1 in
    if Float.abs (!x -. m) <= tol2 -. (0.5 *. (!b -. !a)) then continue := false
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        (* try parabolic fit through x, w, v *)
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q2 = 2. *. (q -. r) in
        let p = if q2 > 0. then -.p else p in
        let q2 = Float.abs q2 in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q2 *. etemp)
          && p > q2 *. (!a -. !x)
          && p < q2 *. (!b -. !x)
        then begin
          d := p /. q2;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if m -. !x >= 0. then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= m then !a -. !x else !b -. !x);
        d := golden *. 2. *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0. then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  (!x, !fx)
