let default_h = 1e-6
let step h x = h *. Float.max 1. (Float.abs x)

let derivative ?(h = default_h) f x =
  let d = step h x in
  (f (x +. d) -. f (x -. d)) /. (2. *. d)

let gradient ?(h = default_h) f x =
  let n = Array.length x in
  let g = Array.make n 0. in
  let xi = Array.copy x in
  for i = 0 to n - 1 do
    let d = step h x.(i) in
    xi.(i) <- x.(i) +. d;
    let fp = f xi in
    xi.(i) <- x.(i) -. d;
    let fm = f xi in
    xi.(i) <- x.(i);
    g.(i) <- (fp -. fm) /. (2. *. d)
  done;
  g

let jacobian ?(h = default_h) f x =
  let n = Array.length x in
  let xi = Array.copy x in
  let columns =
    Array.init n (fun i ->
        let d = step h x.(i) in
        xi.(i) <- x.(i) +. d;
        let fp = f xi in
        xi.(i) <- x.(i) -. d;
        let fm = f xi in
        xi.(i) <- x.(i);
        Array.map2 (fun a b -> (a -. b) /. (2. *. d)) fp fm)
  in
  let m = Array.length columns.(0) in
  Mat.init m n (fun r c -> columns.(c).(r))

let hessian ?(h = 1e-4) f x =
  let n = Array.length x in
  let hess = Mat.create n n 0. in
  let xi = Array.copy x in
  let eval di dj i j =
    xi.(i) <- xi.(i) +. di;
    xi.(j) <- xi.(j) +. dj;
    let v = f xi in
    xi.(i) <- x.(i);
    xi.(j) <- x.(j);
    v
  in
  for i = 0 to n - 1 do
    let di = step h x.(i) in
    for j = i to n - 1 do
      let dj = step h x.(j) in
      let v =
        if i = j then begin
          let fpp = eval di 0. i i
          and fmm = eval (-.di) 0. i i
          and f0 = f x in
          (fpp -. (2. *. f0) +. fmm) /. (di *. di)
        end
        else begin
          let fpp = eval di dj i j
          and fpm = eval di (-.dj) i j
          and fmp = eval (-.di) dj i j
          and fmm = eval (-.di) (-.dj) i j in
          (fpp -. fpm -. fmp +. fmm) /. (4. *. di *. dj)
        end
      in
      Mat.set hess i j v;
      Mat.set hess j i v
    done
  done;
  hess
