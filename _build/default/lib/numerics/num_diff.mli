(** Finite-difference derivatives.

    Fallbacks for model functions without analytic derivatives; the MINLP
    expression AST provides exact derivatives, but the fitting layer and
    the NLP solver accept black-box objectives. *)

(** [gradient ?h f x] — central-difference gradient of [f] at [x].
    [h] is the base step, scaled per-coordinate by [max 1 |x_i|]. *)
val gradient : ?h:float -> (Vec.t -> float) -> Vec.t -> Vec.t

(** [jacobian ?h f x] — central-difference Jacobian of a vector-valued
    [f] at [x]; row [i] is the gradient of component [i]. *)
val jacobian : ?h:float -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t

(** [hessian ?h f x] — symmetric finite-difference Hessian. *)
val hessian : ?h:float -> (Vec.t -> float) -> Vec.t -> Mat.t

(** [derivative ?h f x] — scalar central difference. *)
val derivative : ?h:float -> (float -> float) -> float -> float
