(** Dense vectors of floats.

    A vector is an ordinary [float array]; this module provides the
    arithmetic needed by the linear-algebra and optimization kernels.
    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

(** [create n x] is a fresh vector of length [n] filled with [x]. *)
val create : int -> float -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

val dim : t -> int

(** [add u v] is the elementwise sum. *)
val add : t -> t -> t

(** [sub u v] is the elementwise difference [u - v]. *)
val sub : t -> t -> t

(** [scale a v] is [a * v]. *)
val scale : float -> t -> t

(** [axpy a x y] is [a*x + y] (fresh vector). *)
val axpy : float -> t -> t -> t

(** [dot u v] is the inner product. *)
val dot : t -> t -> float

(** [norm2 v] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm_inf v] is the maximum absolute entry, [0.] when empty. *)
val norm_inf : t -> float

(** [dist2 u v] is [norm2 (sub u v)]. *)
val dist2 : t -> t -> float

(** [map f v] applies [f] elementwise. *)
val map : (float -> float) -> t -> t

(** [map2 f u v] applies [f] to paired elements. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [sum v] is the sum of entries (Kahan-compensated). *)
val sum : t -> float

(** [mean v] is the arithmetic mean. Raises [Invalid_argument] on empty. *)
val mean : t -> float

(** [clamp ~lo ~hi v] projects each entry into [lo.(i), hi.(i)]. *)
val clamp : lo:t -> hi:t -> t -> t

(** [max_elt v] / [min_elt v] — extreme entries; raise on empty. *)
val max_elt : t -> float

val min_elt : t -> float

(** [argmax v] is the index of the first maximal entry. *)
val argmax : t -> int

val argmin : t -> int

(** [equal ~eps u v] holds when entries agree within absolute [eps]. *)
val equal : eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
