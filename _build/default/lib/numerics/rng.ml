type t = { mutable state : int64; mutable cached_normal : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed); cached_normal = None }
let split t = { state = next_int64 t; cached_normal = None }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* 53 random bits -> uniform float in [0,1) *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let float t bound = unit_float t *. bound
let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let normal t ~mu ~sigma =
  match t.cached_normal with
  | Some z ->
    t.cached_normal <- None;
    mu +. (sigma *. z)
  | None ->
    let rec draw () =
      let u = unit_float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () and u2 = unit_float t in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.cached_normal <- Some (r *. sin theta);
    mu +. (sigma *. r *. cos theta)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = unit_float t in
    if u <= 1e-300 then draw () else u
  in
  -.log (draw ()) /. rate

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
