(** Box-constrained nonlinear least squares (Levenberg–Marquardt).

    This is HSLB's "Fit" step engine: it estimates the performance-model
    parameters [a, b, c, d >= 0] of [T(n) = a/n^c + b n + d] from
    benchmark observations (Table II, line 10 of the HSLB formulation).
    The objective is non-convex, so [fit_multi_start] retries from
    several starting points and keeps the best local solution — mirroring
    the paper's observation that different starts give different
    parameters but allocations of similar quality. *)

type result = {
  params : Vec.t;  (** best parameters found, inside the box *)
  residual_norm : float;  (** Euclidean norm of the residual at [params] *)
  iterations : int;
  converged : bool;  (** step- or gradient-tolerance reached *)
}

(** [fit ?max_iter ?xtol ?gtol ~residual ~lo ~hi x0] minimizes
    [0.5 * ||residual p||²] over the box [lo <= p <= hi].

    [residual] maps parameters to the residual vector (must have
    constant length). The Jacobian is computed by central differences;
    steps are projected back into the box (projected Levenberg–
    Marquardt). [x0] is clamped into the box first. *)
val fit :
  ?max_iter:int ->
  ?xtol:float ->
  ?gtol:float ->
  residual:(Vec.t -> Vec.t) ->
  lo:Vec.t ->
  hi:Vec.t ->
  Vec.t ->
  result

(** [fit_multi_start ~rng ~starts ...] runs [fit] from [starts] random
    points sampled log-uniformly inside the box (plus [x0] itself) and
    returns the result with the smallest residual norm. *)
val fit_multi_start :
  ?max_iter:int ->
  rng:Rng.t ->
  starts:int ->
  residual:(Vec.t -> Vec.t) ->
  lo:Vec.t ->
  hi:Vec.t ->
  Vec.t ->
  result
