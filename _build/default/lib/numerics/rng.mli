(** Deterministic, splittable pseudo-random number generator.

    SplitMix64 core: every simulated experiment in this repository must be
    reproducible from a single integer seed, and independent streams
    (one per task class, per trial, ...) must not be correlated, which
    [split] provides without sharing mutable state. *)

type t

(** [create seed] — a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [int t bound] — uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] — uniform in [0, bound). *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] — uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [normal t ~mu ~sigma] — Gaussian draw (Box–Muller). *)
val normal : t -> mu:float -> sigma:float -> float

(** [lognormal t ~mu ~sigma] — [exp] of a Gaussian with the given
    log-space parameters. Used for multiplicative runtime noise. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [exponential t ~rate] — exponential draw with the given rate. *)
val exponential : t -> rate:float -> float

(** [bool t] — fair coin. *)
val bool : t -> bool

(** [shuffle t a] — in-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [choose t a] — uniformly random element. Raises on empty. *)
val choose : t -> 'a array -> 'a
