type t = { nr : int; nc : int; data : float array }

exception Singular

let create nr nc x =
  if nr < 0 || nc < 0 then invalid_arg "Mat.create: negative dimension";
  { nr; nc; data = Array.make (nr * nc) x }

let init nr nc f =
  if nr < 0 || nc < 0 then invalid_arg "Mat.init: negative dimension";
  { nr; nc; data = Array.init (nr * nc) (fun k -> f (k / nc) (k mod nc)) }

let of_arrays a =
  let nr = Array.length a in
  if nr = 0 then invalid_arg "Mat.of_arrays: empty";
  let nc = Array.length a.(0) in
  Array.iter (fun r -> if Array.length r <> nc then invalid_arg "Mat.of_arrays: ragged rows") a;
  init nr nc (fun i j -> a.(i).(j))

let rows m = m.nr
let cols m = m.nc
let get m i j = m.data.((i * m.nc) + j)
let set m i j x = m.data.((i * m.nc) + j) <- x
let to_arrays m = Array.init m.nr (fun i -> Array.init m.nc (fun j -> get m i j))
let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let copy m = { m with data = Array.copy m.data }
let row m i = Array.init m.nc (fun j -> get m i j)
let col m j = Array.init m.nr (fun i -> get m i j)
let transpose m = init m.nc m.nr (fun i j -> get m j i)

let check_same name a b =
  if a.nr <> b.nr || a.nc <> b.nc then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.nr a.nc b.nr b.nc)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.nc <> b.nr then invalid_arg "Mat.mul: inner dimension mismatch";
  let c = create a.nr b.nc 0. in
  for i = 0 to a.nr - 1 do
    for k = 0 to a.nc - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.nc - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mul_vec m v =
  if m.nc <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.nr (fun i ->
      let acc = ref 0. in
      for j = 0 to m.nc - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let tmul_vec m v =
  if m.nr <> Array.length v then invalid_arg "Mat.tmul_vec: dimension mismatch";
  Array.init m.nc (fun j ->
      let acc = ref 0. in
      for i = 0 to m.nr - 1 do
        acc := !acc +. (get m i j *. v.(i))
      done;
      !acc)

type lu = { lu_mat : t; perm : int array; sign : float }

let pivot_eps = 1e-13

let lu_decompose a =
  if a.nr <> a.nc then invalid_arg "Mat.lu_decompose: not square";
  let n = a.nr in
  let m = copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivoting: pick the largest magnitude in column k *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !piv k) then piv := i
    done;
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = get m k j in
        set m k j (get m !piv j);
        set m !piv j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t;
      sign := -. !sign
    end;
    let pivot = get m k k in
    if Float.abs pivot < pivot_eps then raise Singular;
    for i = k + 1 to n - 1 do
      let f = get m i k /. pivot in
      set m i k f;
      for j = k + 1 to n - 1 do
        set m i j (get m i j -. (f *. get m k j))
      done
    done
  done;
  { lu_mat = m; perm; sign = !sign }

let lu_solve { lu_mat = m; perm; _ } b =
  let n = m.nr in
  if Array.length b <> n then invalid_arg "Mat.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (get m i j *. x.(j))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get m i j *. x.(j))
    done;
    x.(i) <- x.(i) /. get m i i
  done;
  x

let solve a b = lu_solve (lu_decompose a) b

let det a =
  match lu_decompose a with
  | exception Singular -> 0.
  | { lu_mat; sign; _ } ->
    let d = ref sign in
    for i = 0 to lu_mat.nr - 1 do
      d := !d *. get lu_mat i i
    done;
    !d

let inverse a =
  let f = lu_decompose a in
  let n = a.nr in
  let inv = create n n 0. in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let x = lu_solve f e in
    for i = 0 to n - 1 do
      set inv i j x.(i)
    done
  done;
  inv

let cholesky a =
  if a.nr <> a.nc then invalid_arg "Mat.cholesky: not square";
  let n = a.nr in
  let l = create n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0. then raise Singular;
        set l i j (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let cholesky_solve l b =
  let n = rows l in
  if Array.length b <> n then invalid_arg "Mat.cholesky_solve: dimension mismatch";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (get l i j *. y.(j))
    done;
    y.(i) <- y.(i) /. get l i i
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (get l j i *. y.(j))
    done;
    y.(i) <- y.(i) /. get l i i
  done;
  y

(* Householder QR: accumulate reflectors into an explicit Q since the
   matrices here are small. *)
let qr a =
  if a.nr < a.nc then invalid_arg "Mat.qr: requires rows >= cols";
  let m = a.nr and n = a.nc in
  let r = copy a in
  let q = identity m in
  let v = Array.make m 0. in
  for k = 0 to n - 1 do
    let norm = ref 0. in
    for i = k to m - 1 do
      norm := !norm +. (get r i k *. get r i k)
    done;
    let norm = sqrt !norm in
    if norm > 1e-300 then begin
      let alpha = if get r k k >= 0. then -.norm else norm in
      let vnorm2 = ref 0. in
      for i = k to m - 1 do
        v.(i) <- (if i = k then get r k k -. alpha else get r i k);
        vnorm2 := !vnorm2 +. (v.(i) *. v.(i))
      done;
      if !vnorm2 > 1e-300 then begin
        (* apply H = I - 2 v vᵀ / (vᵀv) to R (left) and Q (right) *)
        for j = 0 to n - 1 do
          let s = ref 0. in
          for i = k to m - 1 do
            s := !s +. (v.(i) *. get r i j)
          done;
          let f = 2. *. !s /. !vnorm2 in
          for i = k to m - 1 do
            set r i j (get r i j -. (f *. v.(i)))
          done
        done;
        for i = 0 to m - 1 do
          let s = ref 0. in
          for j = k to m - 1 do
            s := !s +. (get q i j *. v.(j))
          done;
          let f = 2. *. !s /. !vnorm2 in
          for j = k to m - 1 do
            set q i j (get q i j -. (f *. v.(j)))
          done
        done
      end
    end
  done;
  (* zero out numerical noise below the diagonal *)
  for i = 0 to m - 1 do
    for j = 0 to Stdlib.min (i - 1) (n - 1) do
      set r i j 0.
    done
  done;
  (q, r)

let solve_least_squares a b =
  if a.nr <> Array.length b then invalid_arg "Mat.solve_least_squares: dimension mismatch";
  let q, r = qr a in
  let qtb = tmul_vec q b in
  let n = a.nc in
  let x = Array.sub qtb 0 n in
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get r i j *. x.(j))
    done;
    if Float.abs (get r i i) < pivot_eps then raise Singular;
    x.(i) <- x.(i) /. get r i i
  done;
  x

let equal ~eps a b =
  a.nr = b.nr && a.nc = b.nc
  &&
  let ok = ref true in
  Array.iteri (fun k x -> if Float.abs (x -. b.data.(k)) > eps then ok := false) a.data;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nr - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.nc - 1 do
      Format.fprintf fmt (if j = 0 then "%10.4g" else " %10.4g") (get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.nr - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
