(** The paper's performance-function family
    [T(n) = a/n^c + b·n + d] (Table II of the HSLB formulation).

    Used twice, deliberately with the same shape: as the {e hidden
    ground truth} each simulated task follows (parameters derived from
    the machine and the task's work), and as the {e fitted model} the
    HSLB decision layer estimates from benchmark observations. *)

type t = {
  a : float;  (** scalable-work coefficient: [a/n^c] *)
  b : float;  (** overhead growing with nodes: [b·n] *)
  c : float;  (** scaling exponent (1 = perfect) *)
  d : float;  (** serial floor *)
}

(** [make ~a ~b ~c ~d] — validates non-negativity (the convexity
    condition the MINLP solvers rely on). *)
val make : a:float -> b:float -> c:float -> d:float -> t

(** [eval law n] — predicted time on [n] nodes ([n >= 1]). *)
val eval : t -> float -> float

(** [eval_int law n] — same with an integer node count. *)
val eval_int : t -> int -> float

(** [derivative law n] — dT/dn, negative while the scalable term
    dominates. *)
val derivative : t -> float -> float

(** [optimal_nodes law ~max_nodes] — the real-valued n in
    [1, max_nodes] minimizing [eval] (golden-section; T is convex). *)
val optimal_nodes : t -> max_nodes:float -> float

(** [is_convex law] — all coefficients non-negative. *)
val is_convex : t -> bool

(** [of_array [|a;b;c;d|]] / [to_array law] — conversion for the
    least-squares fitting layer. *)
val of_array : float array -> t

val to_array : t -> float array
val pp : Format.formatter -> t -> unit
