type t = {
  name : string;
  num_nodes : int;
  cores_per_node : int;
  node_gflops : float;
  efficiency_exponent : float;
  comm_ns_per_word : float;
  serial_fraction : float;
  noise_sigma : float;
}

let make ?(cores_per_node = 4) ?(node_gflops = 13.6) ?(efficiency_exponent = 0.92)
    ?(comm_ns_per_word = 4.) ?(serial_fraction = 0.002) ?(noise_sigma = 0.02) ~name ~num_nodes ()
    =
  if num_nodes <= 0 then invalid_arg "Machine.make: num_nodes must be positive";
  if efficiency_exponent <= 0. || efficiency_exponent > 1.2 then
    invalid_arg "Machine.make: efficiency_exponent out of range";
  {
    name;
    num_nodes;
    cores_per_node;
    node_gflops;
    efficiency_exponent;
    comm_ns_per_word;
    serial_fraction;
    noise_sigma;
  }

(* Blue Gene/P: 4 cores/node at 850 MHz, 13.6 GF/node peak *)
let intrepid = make ~name:"intrepid" ~num_nodes:40_960 ()

let cores m = m.num_nodes * m.cores_per_node
let with_noise m sigma = { m with noise_sigma = sigma }

let pp fmt m =
  Format.fprintf fmt "%s: %d nodes x %d cores, %.1f GF/node, c=%.2f, noise=%.3f" m.name
    m.num_nodes m.cores_per_node m.node_gflops m.efficiency_exponent m.noise_sigma
