type t = { a : float; b : float; c : float; d : float }

let make ~a ~b ~c ~d =
  if a < 0. || b < 0. || c < 0. || d < 0. then
    invalid_arg "Scaling_law.make: coefficients must be non-negative";
  { a; b; c; d }

let eval law n =
  if n < 1. then invalid_arg "Scaling_law.eval: n must be >= 1";
  (law.a /. (n ** law.c)) +. (law.b *. n) +. law.d

let eval_int law n = eval law (float_of_int n)

let derivative law n = (-.law.c *. law.a /. (n ** (law.c +. 1.))) +. law.b

let optimal_nodes law ~max_nodes =
  if max_nodes < 1. then invalid_arg "Scaling_law.optimal_nodes: max_nodes must be >= 1";
  if law.b <= 0. then max_nodes (* monotone decreasing: more nodes is never worse *)
  else begin
    let x, _ = Numerics.Scalar_opt.brent_min (fun n -> eval law n) ~lo:1. ~hi:max_nodes in
    x
  end

let is_convex law = law.a >= 0. && law.b >= 0. && law.c >= 0. && law.d >= 0.
let of_array p = make ~a:p.(0) ~b:p.(1) ~c:p.(2) ~d:p.(3)
let to_array law = [| law.a; law.b; law.c; law.d |]

let pp fmt law =
  Format.fprintf fmt "%.6g/n^%.4g + %.3en + %.6g" law.a law.c law.b law.d
