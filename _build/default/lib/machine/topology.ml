type t = { dim_x : int; dim_y : int; dim_z : int }

let make ~x ~y ~z =
  if x < 1 || y < 1 || z < 1 then invalid_arg "Topology.make: dimensions must be >= 1";
  { dim_x = x; dim_y = y; dim_z = z }

let for_nodes n =
  if n < 1 then invalid_arg "Topology.for_nodes: n must be >= 1";
  let side = int_of_float (Float.ceil (float_of_int n ** (1. /. 3.))) in
  (* shrink axes greedily while capacity still holds *)
  let x = ref side and y = ref side and z = ref side in
  if (!x - 1) * !y * !z >= n then decr x;
  if !x * (!y - 1) * !z >= n then decr y;
  if !x * !y * (!z - 1) >= n then decr z;
  make ~x:(Stdlib.max 1 !x) ~y:(Stdlib.max 1 !y) ~z:(Stdlib.max 1 !z)

let num_nodes t = t.dim_x * t.dim_y * t.dim_z

let coords t id =
  if id < 0 || id >= num_nodes t then invalid_arg "Topology.coords: id out of range";
  let z = id mod t.dim_z in
  let y = id / t.dim_z mod t.dim_y in
  let x = id / (t.dim_z * t.dim_y) in
  (x, y, z)

let axis_distance dim a b =
  let d = abs (a - b) in
  Stdlib.min d (dim - d)

let distance t a b =
  let xa, ya, za = coords t a and xb, yb, zb = coords t b in
  axis_distance t.dim_x xa xb + axis_distance t.dim_y ya yb + axis_distance t.dim_z za zb

let diameter t = (t.dim_x / 2) + (t.dim_y / 2) + (t.dim_z / 2)

type placement = Compact | Scattered

let placement_to_string = function Compact -> "compact" | Scattered -> "scattered"

let place t ~placement ~sizes =
  let total = List.fold_left ( + ) 0 sizes in
  if total > num_nodes t then invalid_arg "Topology.place: more nodes requested than available";
  List.iter (fun s -> if s <= 0 then invalid_arg "Topology.place: non-positive group size") sizes;
  let id_of t (x, y, z) = (((x * t.dim_y) + y) * t.dim_z) + z in
  match placement with
  | Compact ->
    (* real allocators hand out near-cubic sub-blocks; tile the torus
       with cuboids when the sizes are uniform and divide the axes
       evenly, otherwise fall back to consecutive ids *)
    let uniform = match sizes with [] -> None | s :: rest -> if List.for_all (( = ) s) rest then Some s else None in
    let cuboid_dims s =
      let a = int_of_float (Float.ceil (float_of_int s ** (1. /. 3.))) in
      let rec fit a = if a > 1 && t.dim_z mod a <> 0 then fit (a - 1) else a in
      let gz = fit (Stdlib.min a t.dim_z) in
      let rest = (s + gz - 1) / gz in
      let b = int_of_float (Float.ceil (sqrt (float_of_int rest))) in
      let rec fity b = if b > 1 && t.dim_y mod b <> 0 then fity (b - 1) else b in
      let gy = fity (Stdlib.min b t.dim_y) in
      let gx = (rest + gy - 1) / gy in
      (gx, gy, gz)
    in
    let consecutive () =
      let next = ref 0 in
      List.map
        (fun size ->
          let ids = Array.init size (fun k -> !next + k) in
          next := !next + size;
          ids)
        sizes
    in
    (match uniform with
    | Some s ->
      let gx, gy, gz = cuboid_dims s in
      if
        gx * gy * gz = s
        && t.dim_x mod gx = 0
        && t.dim_y mod gy = 0
        && t.dim_z mod gz = 0
        && List.length sizes <= t.dim_x / gx * (t.dim_y / gy) * (t.dim_z / gz)
      then begin
        let blocks_y = t.dim_y / gy and blocks_z = t.dim_z / gz in
        List.mapi
          (fun g _ ->
            let bz = g mod blocks_z in
            let by = g / blocks_z mod blocks_y in
            let bx = g / (blocks_z * blocks_y) in
            Array.init s (fun k ->
                let kz = k mod gz in
                let ky = k / gz mod gy in
                let kx = k / (gz * gy) in
                id_of t ((bx * gx) + kx, (by * gy) + ky, (bz * gz) + kz)))
          sizes
      end
      else consecutive ()
    | None -> consecutive ())
  | Scattered ->
    (* deal node ids from a fixed pseudo-random permutation — the "bad"
       fragmented placement a busy batch scheduler can hand out *)
    let ids = Array.init (num_nodes t) Fun.id in
    Numerics.Rng.shuffle (Numerics.Rng.create 0xC0FFEE) ids;
    let next = ref 0 in
    List.map
      (fun size ->
        let g = Array.sub ids !next size in
        next := !next + size;
        g)
      sizes

let group_diameter t ids =
  let d = ref 0 in
  Array.iteri
    (fun i a ->
      for j = i + 1 to Array.length ids - 1 do
        d := Stdlib.max !d (distance t a ids.(j))
      done)
    ids;
  !d

let comm_factor t ids ~alpha =
  let dia = diameter t in
  if dia = 0 then 1.
  else 1. +. (alpha *. float_of_int (group_diameter t ids) /. float_of_int dia)
