lib/machine/scaling_law.ml: Array Format Numerics
