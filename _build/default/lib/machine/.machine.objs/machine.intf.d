lib/machine/machine.mli: Format
