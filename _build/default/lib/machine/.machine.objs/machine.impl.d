lib/machine/machine.ml: Format
