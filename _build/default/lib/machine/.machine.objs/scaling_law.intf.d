lib/machine/scaling_law.mli: Format
