lib/machine/topology.ml: Array Float Fun List Numerics Stdlib
