lib/machine/topology.mli:
