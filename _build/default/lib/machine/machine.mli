(** Simulated parallel machine.

    Stands in for the paper's IBM Blue Gene/P ("Intrepid", 40,960
    quad-core nodes). The machine fixes the parameters of the hidden
    ground-truth scaling law every task follows — compute rate, the
    efficiency exponent of near-linear scaling, communication overhead
    growing with group size, and a serial floor — plus a multiplicative
    log-normal noise level for simulated executions. The decision layer
    (fitting + MINLP) never sees these parameters, only observed times,
    exactly as HSLB only sees benchmark timings on real hardware. *)

type t = {
  name : string;
  num_nodes : int;
  cores_per_node : int;
  node_gflops : float;  (** sustained per-node compute rate *)
  efficiency_exponent : float;
      (** [c] in the ground-truth [a/n^c]: 1 = perfect scaling *)
  comm_ns_per_word : float;  (** drives the [b·n] overhead term *)
  serial_fraction : float;  (** fraction of a task's work that never parallelizes *)
  noise_sigma : float;  (** log-normal sigma of run-to-run variation *)
}

(** The default machine: Intrepid-like Blue Gene/P. *)
val intrepid : t

(** [make ~name ~num_nodes ()] — custom machine with Intrepid-like
    defaults for unspecified parameters. *)
val make :
  ?cores_per_node:int ->
  ?node_gflops:float ->
  ?efficiency_exponent:float ->
  ?comm_ns_per_word:float ->
  ?serial_fraction:float ->
  ?noise_sigma:float ->
  name:string ->
  num_nodes:int ->
  unit ->
  t

(** [cores m] — total core count. *)
val cores : t -> int

(** [with_noise m sigma] — same machine, different noise level (used by
    the fit-sensitivity experiment E7). *)
val with_noise : t -> float -> t

val pp : Format.formatter -> t -> unit
