(** 3-D torus topology and group placement.

    Blue Gene/P is a 3-D torus; where a processor group's nodes sit on
    it determines the group's internal communication distance. This
    module models node coordinates, torus distances, and the two
    placement policies that matter in practice: {e compact} (consecutive
    nodes fill sub-blocks, small diameters) and {e scattered}
    (round-robin striding across the machine, large diameters). The
    placement-sensitivity experiment uses the resulting per-group
    communication factors to scale the [b·n] overhead term of the
    performance model. *)

type t = private { dim_x : int; dim_y : int; dim_z : int }

(** [make ~x ~y ~z] — torus with the given dimensions (all >= 1). *)
val make : x:int -> y:int -> z:int -> t

(** [for_nodes n] — a near-cubic torus with at least [n] nodes. *)
val for_nodes : int -> t

val num_nodes : t -> int

(** [coords t id] — (x, y, z) of node [id] (z-major order).
    @raise Invalid_argument when [id] is out of range. *)
val coords : t -> int -> int * int * int

(** [distance t a b] — hop distance between nodes [a] and [b] with
    wraparound on every axis. *)
val distance : t -> int -> int -> int

(** [diameter t] — the maximum hop distance on the torus. *)
val diameter : t -> int

type placement = Compact | Scattered

(** [place t ~placement ~sizes] — assign node ids to groups of the given
    sizes: [Compact] hands out consecutive ids; [Scattered] stripes ids
    round-robin across groups. Total size must not exceed
    [num_nodes t]. Returns one id array per group. *)
val place : t -> placement:placement -> sizes:int list -> int array list

(** [group_diameter t ids] — max pairwise hop distance within a group
    ([0] for singleton groups). *)
val group_diameter : t -> int array -> int

(** [comm_factor t ids ~alpha] — multiplicative communication penalty
    for a group: [1 + alpha * group_diameter/diameter]. [alpha]
    expresses how strongly the application's collectives feel wire
    distance. *)
val comm_factor : t -> int array -> alpha:float -> float

val placement_to_string : placement -> string
