(** A small AMPL-like modeling language.

    The paper writes its MINLP "in AMPL, a modeling language that allows
    users to write optimization models using simple mathematical
    notation". This module provides the equivalent text front end for
    the toolkit, so models can live in files next to the data:

    {v
    # allocation model, one line per statement
    var T >= 0;
    var n_atm integer >= 1 <= 1664;
    var n_ocn integer >= 1 <= 768;
    minimize T;
    s.t. time_atm: 23000 / n_atm^0.78 + 30 - T <= 0;
    s.t. time_ocn: 3800 / n_ocn^0.76 + 20 - T <= 0;
    s.t. budget: n_atm + n_ocn <= 2048;
    v}

    Statements end with [;]. [#] starts a comment. Expressions support
    [+ - * / ^] (with standard precedence, [^] binding tightest and
    right-associative), unary minus, parentheses, [exp(e)] and [log(e)].
    Variables: [var NAME [integer|binary] [>= lo] [<= hi];]. Objective:
    [minimize EXPR;] or [maximize EXPR;]. Constraints:
    [s.t. NAME: EXPR (<=|>=|=) EXPR;]. SOS1 sets:
    [sos1 NAME: member:weight member:weight ...;]. *)

(** [parse text] — build the problem.
    @raise Parse_error with a line-annotated message on bad input. *)
exception Parse_error of string

val parse : string -> Problem.t

(** [parse_file path] — read and [parse]. *)
val parse_file : string -> Problem.t

(** [print fmt p] — render a problem back to the language (modulo
    normalization of expressions). [parse (print p)] accepts the
    output. *)
val print : Format.formatter -> Problem.t -> unit
