(** Presolve: bound tightening by interval propagation.

    Classic feasibility-based tightening over the linear rows: for
    [Σ a_j x_j <= b] and a variable with [a_k > 0],
    [x_k <= (b − min-activity of the rest) / a_k] (and symmetrically),
    iterated to a fixpoint. Integer variables get floored/ceiled
    bounds. Tight boxes shrink the branch-and-bound trees and give the
    NLP relaxations better starting boxes — MINOTAUR ships the same
    kind of reformulation/presolve layer. *)

type result = {
  problem : Problem.t;  (** with tightened bounds *)
  rounds : int;  (** propagation rounds until fixpoint (or cap) *)
  tightened : int;  (** number of bound changes applied *)
  infeasible : bool;  (** a variable's box emptied: the problem is infeasible *)
}

(** [tighten ?max_rounds p] — propagate (default 10 rounds max). *)
val tighten : ?max_rounds:int -> Problem.t -> result
