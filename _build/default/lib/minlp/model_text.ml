exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ---------- tokenizer ---------- *)

type token =
  | Num of float
  | Ident of string
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen
  | Colon
  | Le
  | Ge
  | Eq

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      let seen_e = ref false in
      while
        !j < n
        && (is_digit s.[!j] || s.[!j] = '.'
           || s.[!j] = 'e' || s.[!j] = 'E'
           || ((s.[!j] = '+' || s.[!j] = '-') && !seen_e && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        if s.[!j] = 'e' || s.[!j] = 'E' then seen_e := true;
        incr j
      done;
      let text = String.sub s !i (!j - !i) in
      (match float_of_string_opt text with
      | Some v -> toks := Num v :: !toks
      | None -> fail "bad number %S" text);
      i := !j
    end
    else if is_ident_char c && not (is_digit c) then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      (match two with
      | "<=" ->
        toks := Le :: !toks;
        i := !i + 2
      | ">=" ->
        toks := Ge :: !toks;
        i := !i + 2
      | _ ->
        (match c with
        | '+' -> toks := Plus :: !toks
        | '-' -> toks := Minus :: !toks
        | '*' -> toks := Star :: !toks
        | '/' -> toks := Slash :: !toks
        | '^' -> toks := Caret :: !toks
        | '(' -> toks := Lparen :: !toks
        | ')' -> toks := Rparen :: !toks
        | ':' -> toks := Colon :: !toks
        | '=' -> toks := Eq :: !toks
        | _ -> fail "unexpected character %C" c);
        incr i)
    end
  done;
  List.rev !toks

(* ---------- expression parser (recursive descent) ---------- *)

(* grammar: expr := term (('+'|'-') term)*
            term := factor (('*'|'/') factor)*
            factor := atom ('^' factor)?          (right assoc)
            atom := NUM | IDENT | IDENT '(' expr ')' | '(' expr ')' | '-' factor *)
let parse_expr ~var_index toks =
  let rest = ref toks in
  let peek () = match !rest with [] -> None | t :: _ -> Some t in
  let advance () = match !rest with [] -> fail "unexpected end of expression" | _ :: tl -> rest := tl in
  let expect t what =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> fail "expected %s" what
  in
  let rec expr () =
    let lhs = ref (term ()) in
    let continue_loop = ref true in
    while !continue_loop do
      match peek () with
      | Some Plus ->
        advance ();
        lhs := Expr.add [ !lhs; term () ]
      | Some Minus ->
        advance ();
        lhs := Expr.add [ !lhs; Expr.neg (term ()) ]
      | _ -> continue_loop := false
    done;
    !lhs
  and term () =
    let lhs = ref (factor ()) in
    let continue_loop = ref true in
    while !continue_loop do
      match peek () with
      | Some Star ->
        advance ();
        lhs := Expr.mul !lhs (factor ())
      | Some Slash ->
        advance ();
        lhs := Expr.div !lhs (factor ())
      | _ -> continue_loop := false
    done;
    !lhs
  and factor () =
    let base = atom () in
    match peek () with
    | Some Caret -> (
      advance ();
      (* exponent must reduce to a constant *)
      let e = factor () in
      match Expr.simplify e with
      | Expr.Const p -> Expr.pow base p
      | _ -> fail "exponent must be a constant")
    | _ -> base
  and atom () =
    match peek () with
    | Some (Num v) ->
      advance ();
      Expr.const v
    | Some Minus ->
      advance ();
      Expr.neg (factor ())
    | Some Lparen ->
      advance ();
      let e = expr () in
      expect Rparen "')'";
      e
    | Some (Ident name) -> (
      advance ();
      match peek () with
      | Some Lparen ->
        advance ();
        let arg = expr () in
        expect Rparen "')'";
        (match name with
        | "exp" -> Expr.exp_ arg
        | "log" -> Expr.log_ arg
        | other -> fail "unknown function %S" other)
      | _ -> (
        match var_index name with
        | Some j -> Expr.var j
        | None -> fail "unknown variable %S" name))
    | Some _ -> fail "unexpected token in expression"
    | None -> fail "unexpected end of expression"
  in
  let e = expr () in
  (e, !rest)

(* ---------- statements ---------- *)

let strip_comments text =
  String.concat "\n"
    (List.map
       (fun line -> match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line)
       (String.split_on_char '\n' text))

let statements text =
  String.split_on_char ';' (strip_comments text)
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.trim (String.sub s (String.length prefix) (String.length s - String.length prefix))

type var_decl = { vd_name : string; vd_kind : Problem.var_kind; vd_lo : float option; vd_hi : float option }

let parse_var_decl body =
  match tokenize body with
  | Ident name :: rest ->
    let kind, rest =
      match rest with
      | Ident "integer" :: tl -> (Problem.Integer, tl)
      | Ident "binary" :: tl -> (Problem.Binary, tl)
      | tl -> (Problem.Continuous, tl)
    in
    let lo = ref None and hi = ref None in
    let rec bounds = function
      | [] -> ()
      | Ge :: Num v :: tl ->
        lo := Some v;
        bounds tl
      | Ge :: Minus :: Num v :: tl ->
        lo := Some (-.v);
        bounds tl
      | Le :: Num v :: tl ->
        hi := Some v;
        bounds tl
      | Le :: Minus :: Num v :: tl ->
        hi := Some (-.v);
        bounds tl
      | _ -> fail "bad bound syntax in var %s" name
    in
    bounds rest;
    { vd_name = name; vd_kind = kind; vd_lo = !lo; vd_hi = !hi }
  | _ -> fail "bad var declaration: %S" body

(* a constraint body: NAME ':' EXPR (<=|>=|=) EXPR *)
let parse_constraint ~var_index b body =
  match tokenize body with
  | Ident name :: Colon :: rest ->
    let lhs, rest = parse_expr ~var_index rest in
    let sense, rest =
      match rest with
      | Le :: tl -> (Lp.Lp_problem.Le, tl)
      | Ge :: tl -> (Lp.Lp_problem.Ge, tl)
      | Eq :: tl -> (Lp.Lp_problem.Eq, tl)
      | _ -> fail "constraint %s: missing <=, >= or =" name
    in
    let rhs, rest = parse_expr ~var_index rest in
    if rest <> [] then fail "constraint %s: trailing tokens" name;
    (* move everything left: lhs - rhs SENSE 0 *)
    Problem.Builder.add_constr b ~name Expr.(lhs - rhs) sense 0.
  | _ -> fail "bad constraint: %S" body

let parse_sos1 ~var_index b body =
  match tokenize body with
  | Ident _name :: Colon :: rest ->
    let rec members acc = function
      | [] -> List.rev acc
      | Ident v :: Colon :: Num w :: tl -> (
        match var_index v with
        | Some j -> members ((j, w) :: acc) tl
        | None -> fail "sos1 member %S is not a variable" v)
      | _ -> fail "bad sos1 member syntax"
    in
    let ms = members [] rest in
    if ms = [] then fail "empty sos1 set";
    Problem.Builder.add_sos1 b ms
  | _ -> fail "bad sos1 statement: %S" body

let parse text =
  let stmts = statements text in
  (* pass 1: variable declarations and objective sense *)
  let decls =
    List.filter_map
      (fun s -> if starts_with ~prefix:"var " s then Some (parse_var_decl (after ~prefix:"var " s)) else None)
      stmts
  in
  if decls = [] then fail "no variables declared";
  let minimize =
    match
      List.filter_map
        (fun s ->
          if starts_with ~prefix:"minimize " s then Some true
          else if starts_with ~prefix:"maximize " s then Some false
          else None)
        stmts
    with
    | [ m ] -> m
    | [] -> fail "no objective (minimize/maximize) statement"
    | _ -> fail "multiple objective statements"
  in
  let b = Problem.Builder.create ~minimize () in
  let index = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem index d.vd_name then fail "variable %S declared twice" d.vd_name;
      let j = Problem.Builder.add_var b ~name:d.vd_name ?lo:d.vd_lo ?hi:d.vd_hi d.vd_kind in
      Hashtbl.add index d.vd_name j)
    decls;
  let var_index name = Hashtbl.find_opt index name in
  (* pass 2: objective and constraints in order *)
  List.iter
    (fun s ->
      if starts_with ~prefix:"var " s then ()
      else if starts_with ~prefix:"minimize " s || starts_with ~prefix:"maximize " s then begin
        let body = after ~prefix:(if minimize then "minimize " else "maximize ") s in
        let e, rest = parse_expr ~var_index (tokenize body) in
        if rest <> [] then fail "objective: trailing tokens";
        Problem.Builder.set_objective b e
      end
      else if starts_with ~prefix:"s.t." s then
        parse_constraint ~var_index b (after ~prefix:"s.t." s)
      else if starts_with ~prefix:"subject to " s then
        parse_constraint ~var_index b (after ~prefix:"subject to " s)
      else if starts_with ~prefix:"sos1 " s then parse_sos1 ~var_index b (after ~prefix:"sos1 " s)
      else fail "unrecognized statement: %S" s)
    stmts;
  Problem.Builder.build b

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

(* ---------- printer ---------- *)

let rec pp_expr names fmt (e : Expr.t) =
  match e with
  | Expr.Const c -> if c < 0. then Format.fprintf fmt "(%g)" c else Format.fprintf fmt "%g" c
  | Expr.Var j -> Format.pp_print_string fmt names.(j)
  | Expr.Add es ->
    Format.fprintf fmt "(";
    List.iteri
      (fun i sub -> Format.fprintf fmt (if i = 0 then "%a" else " + %a") (pp_expr names) sub)
      es;
    Format.fprintf fmt ")"
  | Expr.Mul (a, b) -> Format.fprintf fmt "(%a * %a)" (pp_expr names) a (pp_expr names) b
  | Expr.Neg a -> Format.fprintf fmt "(0 - %a)" (pp_expr names) a
  | Expr.Div (a, b) -> Format.fprintf fmt "(%a / %a)" (pp_expr names) a (pp_expr names) b
  | Expr.Pow (a, p) ->
    if p < 0. then Format.fprintf fmt "(1 / %a^%g)" (pp_expr names) a (-.p)
    else Format.fprintf fmt "%a^%g" (pp_expr names) a p
  | Expr.Exp a -> Format.fprintf fmt "exp(%a)" (pp_expr names) a
  | Expr.Log a -> Format.fprintf fmt "log(%a)" (pp_expr names) a

let print fmt (p : Problem.t) =
  for j = 0 to p.Problem.num_vars - 1 do
    let kind =
      match p.Problem.kinds.(j) with
      | Problem.Continuous -> ""
      | Problem.Integer -> " integer"
      | Problem.Binary -> " binary"
    in
    Format.fprintf fmt "var %s%s" p.Problem.names.(j) kind;
    if Float.is_finite p.Problem.lo.(j) then Format.fprintf fmt " >= %.17g" p.Problem.lo.(j);
    if Float.is_finite p.Problem.hi.(j) then Format.fprintf fmt " <= %.17g" p.Problem.hi.(j);
    Format.fprintf fmt ";@."
  done;
  Format.fprintf fmt "%s %a;@."
    (if p.Problem.minimize then "minimize" else "maximize")
    (pp_expr p.Problem.names) p.Problem.objective;
  List.iter
    (fun (c : Problem.constr) ->
      let sense =
        match c.Problem.sense with Lp.Lp_problem.Le -> "<=" | Lp.Lp_problem.Ge -> ">=" | Lp.Lp_problem.Eq -> "="
      in
      Format.fprintf fmt "s.t. %s: %a %s %.17g;@." c.Problem.cname (pp_expr p.Problem.names)
        c.Problem.expr sense c.Problem.rhs)
    p.Problem.constraints;
  List.iteri
    (fun i members ->
      Format.fprintf fmt "sos1 set%d:" i;
      List.iter (fun (j, w) -> Format.fprintf fmt " %s:%.17g" p.Problem.names.(j) w) members;
      Format.fprintf fmt ";@.")
    p.Problem.sos1
