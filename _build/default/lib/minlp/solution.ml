type status = Optimal | Infeasible | Unbounded | Limit
type stats = { nodes : int; lp_solves : int; nlp_solves : int; cuts : int }
type t = { status : status; x : float array; obj : float; bound : float; stats : stats }

let empty_stats = { nodes = 0; lp_solves = 0; nlp_solves = 0; cuts = 0 }

let status_to_string = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Limit -> "limit"

let pp fmt s =
  Format.fprintf fmt "@[<h>%s obj=%g bound=%g nodes=%d lp=%d nlp=%d cuts=%d@]"
    (status_to_string s.status) s.obj s.bound s.stats.nodes s.stats.lp_solves s.stats.nlp_solves
    s.stats.cuts
