type result = { problem : Problem.t; rounds : int; tightened : int; infeasible : bool }

let is_int_kind = function Problem.Integer | Problem.Binary -> true | Problem.Continuous -> false

let tighten ?(max_rounds = 10) (p : Problem.t) =
  let lin_rows, _ = Problem.split_constraints p in
  (* expand each row into one or two <= forms: coeffs·x <= rhs *)
  let le_rows =
    List.concat_map
      (fun (row : Lp.Lp_problem.constr) ->
        match row.sense with
        | Lp.Lp_problem.Le -> [ (row.coeffs, row.rhs) ]
        | Lp.Lp_problem.Ge -> [ (List.map (fun (j, a) -> (j, -.a)) row.coeffs, -.row.rhs) ]
        | Lp.Lp_problem.Eq ->
          [
            (row.coeffs, row.rhs);
            (List.map (fun (j, a) -> (j, -.a)) row.coeffs, -.row.rhs);
          ])
      lin_rows
  in
  let lo = Array.copy p.lo and hi = Array.copy p.hi in
  let tightened = ref 0 in
  let infeasible = ref false in
  let rounds = ref 0 in
  let changed = ref true in
  let eps = 1e-9 in
  while !changed && (not !infeasible) && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter
      (fun (coeffs, rhs) ->
        if not !infeasible then begin
          (* min activity of the whole row; +inf contributions poison it *)
          let min_term j a = if a > 0. then a *. lo.(j) else a *. hi.(j) in
          let min_activity =
            List.fold_left (fun acc (j, a) -> acc +. min_term j a) 0. coeffs
          in
          List.iter
            (fun (k, a) ->
              if Float.abs a > eps then begin
                let rest = min_activity -. min_term k a in
                if Float.is_finite rest then begin
                  if a > 0. then begin
                    (* x_k <= (rhs - rest) / a *)
                    let bound = (rhs -. rest) /. a in
                    let bound =
                      if is_int_kind p.kinds.(k) then Float.floor (bound +. 1e-7) else bound
                    in
                    if bound < hi.(k) -. eps then begin
                      hi.(k) <- bound;
                      incr tightened;
                      changed := true
                    end
                  end
                  else begin
                    (* x_k >= (rhs - rest) / a (a < 0) *)
                    let bound = (rhs -. rest) /. a in
                    let bound =
                      if is_int_kind p.kinds.(k) then Float.ceil (bound -. 1e-7) else bound
                    in
                    if bound > lo.(k) +. eps then begin
                      lo.(k) <- bound;
                      incr tightened;
                      changed := true
                    end
                  end;
                  if lo.(k) > hi.(k) +. 1e-7 then infeasible := true
                end
              end)
            coeffs
        end)
      le_rows
  done;
  if !infeasible then { problem = p; rounds = !rounds; tightened = !tightened; infeasible = true }
  else
    {
      problem = Problem.with_bounds p ~lo ~hi;
      rounds = !rounds;
      tightened = !tightened;
      infeasible = false;
    }
