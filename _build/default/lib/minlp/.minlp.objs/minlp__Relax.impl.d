lib/minlp/relax.ml: Array Expr Float List Lp Nlp Numerics Problem
