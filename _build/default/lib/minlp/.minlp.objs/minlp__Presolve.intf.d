lib/minlp/presolve.mli: Problem
