lib/minlp/oa.ml: Array Buffer Float Hashtbl List Lp Milp Option Presolve Problem Relax Solution
