lib/minlp/model_text.mli: Format Problem
