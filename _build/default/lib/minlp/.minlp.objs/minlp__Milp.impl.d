lib/minlp/milp.ml: Array Ds Float List Lp Problem Solution Stdlib
