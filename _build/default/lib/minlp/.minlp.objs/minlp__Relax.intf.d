lib/minlp/relax.mli: Lp Problem
