lib/minlp/presolve.ml: Array Float List Lp Problem
