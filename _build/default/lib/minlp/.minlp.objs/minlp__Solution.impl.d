lib/minlp/solution.ml: Format
