lib/minlp/problem.ml: Array Expr Float Format List Lp Option Printf
