lib/minlp/oa_multi.ml: Array Float List Lp Milp Presolve Problem Relax Solution
