lib/minlp/bnb.mli: Problem Solution
