lib/minlp/expr.ml: Array Format Hashtbl List Option
