lib/minlp/milp.mli: Lp Problem Solution
