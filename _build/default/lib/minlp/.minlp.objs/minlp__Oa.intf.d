lib/minlp/oa.mli: Milp Problem Solution
