lib/minlp/problem.mli: Expr Format Lp
