lib/minlp/expr.mli: Format
