lib/minlp/solution.mli: Format
