lib/minlp/oa_multi.mli: Problem Solution
