lib/minlp/model_text.ml: Array Expr Float Format Hashtbl List Lp Printf Problem String
