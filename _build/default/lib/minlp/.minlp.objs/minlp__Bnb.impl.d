lib/minlp/bnb.ml: Array Ds Float List Milp Numerics Presolve Problem Relax Solution
