(** Solver result types shared by the MILP, NLP-based and LP/NLP-based
    branch-and-bound algorithms. *)

type status =
  | Optimal  (** proven optimal within the gap tolerance *)
  | Infeasible
  | Unbounded
  | Limit  (** node or iteration budget exhausted; best incumbent in [x] *)

type stats = {
  nodes : int;  (** branch-and-bound nodes processed *)
  lp_solves : int;
  nlp_solves : int;
  cuts : int;  (** outer-approximation cuts added *)
}

type t = {
  status : status;
  x : float array;
  obj : float;
  bound : float;  (** best proven bound on the optimum (min-sense value) *)
  stats : stats;
}

val empty_stats : stats
val status_to_string : status -> string
val pp : Format.formatter -> t -> unit
