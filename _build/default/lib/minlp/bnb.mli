(** NLP-based branch-and-bound for convex MINLPs.

    The classical algorithm (Dakin's tree search with nonlinear
    relaxations): each node solves the continuous NLP relaxation under
    the node's bounds; convexity of the model class makes the relaxation
    value a valid lower bound, so pruning is exact. Serves as the
    reference solver and as the baseline against which the LP/NLP-based
    {!Oa} solver is benchmarked (experiment E6). *)

type options = {
  max_nodes : int;
  tol_int : float;
  rel_gap : float;
  branch_sos_first : bool;
}

val default_options : options

(** [solve ?options p] — solve the MINLP. Nonlinear objectives are
    handled by epigraph normalization internally; the returned [x] is in
    the original variable space. *)
val solve : ?options:options -> Problem.t -> Solution.t
