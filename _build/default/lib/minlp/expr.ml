type t =
  | Const of float
  | Var of int
  | Add of t list
  | Mul of t * t
  | Neg of t
  | Div of t * t
  | Pow of t * float
  | Exp of t
  | Log of t

let const c = Const c

let var j =
  if j < 0 then invalid_arg "Expr.var: negative index";
  Var j

(* --- light smart constructors --- *)

let add es =
  let flat =
    List.concat_map (function Add inner -> inner | e -> [ e ]) es
  in
  let consts, rest = List.partition (function Const _ -> true | _ -> false) flat in
  let csum = List.fold_left (fun acc e -> match e with Const c -> acc +. c | _ -> acc) 0. consts in
  match (rest, csum) with
  | [], c -> Const c
  | [ e ], 0. -> e
  | es, 0. -> Add es
  | es, c -> Add (es @ [ Const c ])

let neg = function Const c -> Const (-.c) | Neg e -> e | e -> Neg e

let mul a b =
  match (a, b) with
  | Const 0., _ | _, Const 0. -> Const 0.
  | Const 1., e | e, Const 1. -> e
  | Const x, Const y -> Const (x *. y)
  | a, b -> Mul (a, b)

let div a b =
  match (a, b) with
  | _, Const 0. -> invalid_arg "Expr.div: division by constant zero"
  | Const 0., _ -> Const 0.
  | e, Const 1. -> e
  | Const x, Const y -> Const (x /. y)
  | a, b -> Div (a, b)

let pow e p =
  match (e, p) with
  | _, 0. -> Const 1.
  | e, 1. -> e
  | Const c, p -> Const (c ** p)
  | e, p -> Pow (e, p)

let exp_ = function Const c -> Const (exp c) | e -> Exp e
let log_ = function Const c when c > 0. -> Const (log c) | e -> Log e
let scale c e = mul (Const c) e
let linear coeffs = add (List.map (fun (j, c) -> mul (Const c) (Var j)) coeffs)
let ( + ) a b = add [ a; b ]
let ( - ) a b = add [ a; neg b ]
let ( * ) = mul
let ( / ) = div

let rec eval e x =
  match e with
  | Const c -> c
  | Var j ->
    if j >= Array.length x then invalid_arg "Expr.eval: variable index out of range";
    x.(j)
  | Add es -> List.fold_left (fun acc e -> acc +. eval e x) 0. es
  | Mul (a, b) -> eval a x *. eval b x
  | Neg a -> -.eval a x
  | Div (a, b) -> eval a x /. eval b x
  | Pow (a, p) -> eval a x ** p
  | Exp a -> exp (eval a x)
  | Log a -> log (eval a x)

let rec diff e j =
  match e with
  | Const _ -> Const 0.
  | Var k -> if k = j then Const 1. else Const 0.
  | Add es -> add (List.map (fun e -> diff e j) es)
  | Mul (a, b) -> add [ mul (diff a j) b; mul a (diff b j) ]
  | Neg a -> neg (diff a j)
  | Div (a, b) ->
    (* (a'b - ab') / b² *)
    div (add [ mul (diff a j) b; neg (mul a (diff b j)) ]) (pow b 2.)
  | Pow (a, p) -> mul (Const p) (mul (pow a (p -. 1.)) (diff a j))
  | Exp a -> mul (Exp a) (diff a j)
  | Log a -> div (diff a j) a

let rec vars_aux acc = function
  | Const _ -> acc
  | Var j -> j :: acc
  | Add es -> List.fold_left vars_aux acc es
  | Mul (a, b) | Div (a, b) -> vars_aux (vars_aux acc a) b
  | Neg a | Pow (a, _) | Exp a | Log a -> vars_aux acc a

let vars e = List.sort_uniq compare (vars_aux [] e)
let max_var e = match List.rev (vars e) with [] -> -1 | j :: _ -> j

let gradient e x =
  let g = Array.make (Array.length x) 0. in
  List.iter (fun j -> g.(j) <- eval (diff e j) x) (vars e);
  g

let compile_gradient e =
  let partials = List.map (fun j -> (j, diff e j)) (vars e) in
  fun x ->
    let g = Array.make (Array.length x) 0. in
    List.iter (fun (j, d) -> g.(j) <- eval d x) partials;
    g

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Add es -> add (List.map simplify es)
  | Mul (a, b) -> mul (simplify a) (simplify b)
  | Neg a -> neg (simplify a)
  | Div (a, b) -> div (simplify a) (simplify b)
  | Pow (a, p) -> pow (simplify a) p
  | Exp a -> exp_ (simplify a)
  | Log a -> log_ (simplify a)

let rec is_linear = function
  | Const _ | Var _ -> true
  | Add es -> List.for_all is_linear es
  | Neg a -> is_linear a
  | Mul (Const _, e) | Mul (e, Const _) -> is_linear e
  | Div (e, Const _) -> is_linear e
  | Mul _ | Div _ | Pow _ | Exp _ | Log _ -> false

let linear_parts e =
  if not (is_linear e) then invalid_arg "Expr.linear_parts: not linear";
  let tbl = Hashtbl.create 8 in
  let constant = ref 0. in
  let bump j c = Hashtbl.replace tbl j (c +. Option.value ~default:0. (Hashtbl.find_opt tbl j)) in
  let rec go mult = function
    | Const c -> constant := !constant +. (mult *. c)
    | Var j -> bump j mult
    | Add es -> List.iter (go mult) es
    | Neg a -> go (-.mult) a
    | Mul (Const c, e) | Mul (e, Const c) -> go (mult *. c) e
    | Div (e, Const c) -> go (mult /. c) e
    | Mul _ | Div _ | Pow _ | Exp _ | Log _ -> assert false
  in
  go 1. e;
  let coeffs = Hashtbl.fold (fun j c acc -> (j, c) :: acc) tbl [] in
  (List.sort compare coeffs, !constant)

let linearize e x = (eval e x, gradient e x)

let rec pp fmt = function
  | Const c -> Format.fprintf fmt "%g" c
  | Var j -> Format.fprintf fmt "x%d" j
  | Add es ->
    Format.fprintf fmt "(";
    List.iteri (fun i e -> Format.fprintf fmt (if i = 0 then "%a" else " + %a") pp e) es;
    Format.fprintf fmt ")"
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Neg a -> Format.fprintf fmt "-%a" pp a
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Pow (a, p) -> Format.fprintf fmt "%a^%g" pp a p
  | Exp a -> Format.fprintf fmt "exp(%a)" pp a
  | Log a -> Format.fprintf fmt "log(%a)" pp a

let to_string e = Format.asprintf "%a" pp e
