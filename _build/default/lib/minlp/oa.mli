(** LP/NLP-based branch-and-bound (single-tree outer approximation).

    The algorithm the paper uses from MINOTAUR (Quesada–Grossmann /
    Fletcher–Leyffer [13]): a {e single} MILP tree is searched; whenever
    a node's LP optimum is integer feasible, the nonlinear constraints
    are checked. If violated, an NLP with the integer assignment fixed
    is solved, outer-approximation cuts are generated at its solution
    (or feasibility cuts at the LP point when the fixed NLP is
    infeasible), and the node is re-solved against the tightened
    relaxation. Convexity of the fitted performance functions
    (coefficients [a, b, d >= 0]) guarantees the cuts are globally valid,
    so the returned solution is a global optimum — the property the
    paper highlights ("guarantees to provide an optimal solution or show
    that none exists"). *)

type options = {
  max_nodes : int;
  tol_int : float;
  tol_nl : float;  (** nonlinear feasibility tolerance for accepting points *)
  rel_gap : float;
  branch_sos_first : bool;
  max_oa_rounds : int;  (** cut rounds per integer assignment (cycling guard) *)
  branching : Milp.branching;  (** master-tree variable branching rule *)
}

val default_options : options

(** [solve ?options p] — solve a convex MINLP. Nonlinear objectives are
    epigraph-normalized internally; [x] is returned in the original
    variable space. *)
val solve : ?options:options -> Problem.t -> Solution.t
