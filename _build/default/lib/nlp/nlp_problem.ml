open Numerics

type kind = Ineq | Eq

type constr = {
  g : Vec.t -> float;
  g_grad : (Vec.t -> Vec.t) option;
  kind : kind;
  label : string;
}

type t = {
  dim : int;
  f : Vec.t -> float;
  f_grad : (Vec.t -> Vec.t) option;
  lo : Vec.t;
  hi : Vec.t;
  constraints : constr list;
}

let make ?f_grad ?lo ?hi ?(constraints = []) ~dim ~f () =
  if dim <= 0 then invalid_arg "Nlp_problem.make: dim must be positive";
  let lo = match lo with Some v -> v | None -> Vec.create dim neg_infinity in
  let hi = match hi with Some v -> v | None -> Vec.create dim infinity in
  if Vec.dim lo <> dim || Vec.dim hi <> dim then
    invalid_arg "Nlp_problem.make: bound dimension mismatch";
  Array.iteri (fun i l -> if l > hi.(i) then invalid_arg "Nlp_problem.make: lo > hi") lo;
  { dim; f; f_grad; lo; hi; constraints }

let ineq ?grad ?(label = "ineq") g = { g; g_grad = grad; kind = Ineq; label }
let eq ?grad ?(label = "eq") g = { g; g_grad = grad; kind = Eq; label }

let violation p x =
  let v = ref 0. in
  List.iter
    (fun c ->
      let gx = c.g x in
      let viol = match c.kind with Ineq -> Float.max 0. gx | Eq -> Float.abs gx in
      v := Float.max !v viol)
    p.constraints;
  for i = 0 to p.dim - 1 do
    v := Float.max !v (Float.max (p.lo.(i) -. x.(i)) (x.(i) -. p.hi.(i)))
  done;
  !v

let gradient_of p x =
  match p.f_grad with Some g -> g x | None -> Num_diff.gradient p.f x
