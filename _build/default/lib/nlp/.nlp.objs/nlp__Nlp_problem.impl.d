lib/nlp/nlp_problem.ml: Array Float List Num_diff Numerics Vec
