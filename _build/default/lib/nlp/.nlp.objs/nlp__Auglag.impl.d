lib/nlp/auglag.ml: Array Bounded Float Nlp_problem Num_diff Numerics Vec
