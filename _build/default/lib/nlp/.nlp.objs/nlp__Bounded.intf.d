lib/nlp/bounded.mli: Numerics
