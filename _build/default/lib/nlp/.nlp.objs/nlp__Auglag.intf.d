lib/nlp/auglag.mli: Nlp_problem Numerics
