lib/nlp/bounded.ml: Array Float Num_diff Numerics Vec
