lib/nlp/nlp_problem.mli: Numerics
