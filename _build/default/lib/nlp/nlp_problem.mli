(** Nonlinear-program description.

    minimize [f x] subject to [g_i x <= 0], [h_j x = 0] and box bounds.
    Gradients are optional; central differences are used when absent.
    The MINLP layer only ever emits convex [g_i] (the fitted performance
    functions have non-negative coefficients), which is what makes the
    branch-and-bound bounds valid. *)

type kind = Ineq  (** [g x <= 0] *) | Eq  (** [g x = 0] *)

type constr = {
  g : Numerics.Vec.t -> float;
  g_grad : (Numerics.Vec.t -> Numerics.Vec.t) option;
  kind : kind;
  label : string;  (** for diagnostics *)
}

type t = {
  dim : int;
  f : Numerics.Vec.t -> float;
  f_grad : (Numerics.Vec.t -> Numerics.Vec.t) option;
  lo : Numerics.Vec.t;
  hi : Numerics.Vec.t;
  constraints : constr list;
}

(** [make ~dim ~f ()] — unconstrained problem over [(-inf, inf)^dim]. *)
val make :
  ?f_grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  ?lo:Numerics.Vec.t ->
  ?hi:Numerics.Vec.t ->
  ?constraints:constr list ->
  dim:int ->
  f:(Numerics.Vec.t -> float) ->
  unit ->
  t

(** [ineq ?grad ?label g] — an inequality constraint [g x <= 0]. *)
val ineq :
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) -> ?label:string -> (Numerics.Vec.t -> float) -> constr

(** [eq ?grad ?label g] — an equality constraint [g x = 0]. *)
val eq :
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) -> ?label:string -> (Numerics.Vec.t -> float) -> constr

(** [violation p x] — max over constraints of their violation
    ([max 0 (g x)] for inequalities, [|h x|] for equalities);
    box violations included. [0.] when feasible. *)
val violation : t -> Numerics.Vec.t -> float

(** [gradient_of p x] — analytic gradient when present, else central
    differences. *)
val gradient_of : t -> Numerics.Vec.t -> Numerics.Vec.t
