lib/lp/simplex.mli: Lp_problem
