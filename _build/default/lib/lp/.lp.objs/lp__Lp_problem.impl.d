lib/lp/lp_problem.ml: Array Float Format List Printf
