lib/lp/lp_problem.mli: Format
