lib/lp/simplex.ml: Array Float List Lp_problem
