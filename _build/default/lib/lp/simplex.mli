(** Two-phase dense primal simplex.

    Plays the role of CLP in the paper's stack: it solves the LP
    relaxations inside the MILP branch-and-bound and the master problems
    of the LP/NLP-based MINLP algorithm. General bounds and free
    variables are handled by substitution; degeneracy is handled by
    switching from Dantzig to Bland's rule, which guarantees
    termination. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** gave up; [x]/[obj] hold the last iterate *)

type solution = {
  status : status;
  x : float array;  (** length [num_vars]; meaningful when [Optimal] *)
  obj : float;  (** objective value in the problem's own sense *)
}

(** [solve ?max_iter p] — solve [p]. The result's [x] is in the original
    variable space (bound offsets undone). *)
val solve : ?max_iter:int -> Lp_problem.t -> solution
