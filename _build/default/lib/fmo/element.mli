(** Chemical elements used by the workload generators. *)

type t = H | C | N | O | S

val symbol : t -> string
val atomic_number : t -> int

(** [electrons t] — same as atomic number (neutral atoms). *)
val electrons : t -> int
