(** Gaussian basis sets: per-element basis-function counts.

    Only the counts matter here — they drive the synthetic SCF cost
    model (work scales superlinearly in the number of basis
    functions). Counts follow the standard contraction schemes. *)

type t =
  | Sto3g  (** minimal basis *)
  | B6_31g  (** split valence *)
  | B6_31gd  (** split valence + polarization d on heavy atoms *)

val name : t -> string

(** [nbf_element basis e] — basis functions contributed by one atom. *)
val nbf_element : t -> Element.t -> int

(** [nbf basis elements] — total count for an atom list. *)
val nbf : t -> Element.t list -> int
