type point = { x : float; y : float; z : float }

let origin = { x = 0.; y = 0.; z = 0. }
let make x y z = { x; y; z }
let add p q = { x = p.x +. q.x; y = p.y +. q.y; z = p.z +. q.z }
let sub p q = { x = p.x -. q.x; y = p.y -. q.y; z = p.z -. q.z }
let scale s p = { x = s *. p.x; y = s *. p.y; z = s *. p.z }
let norm p = sqrt ((p.x *. p.x) +. (p.y *. p.y) +. (p.z *. p.z))
let dist p q = norm (sub p q)

let centroid pts =
  match pts with
  | [] -> invalid_arg "Geometry.centroid: empty"
  | _ ->
    let n = float_of_int (List.length pts) in
    scale (1. /. n) (List.fold_left add origin pts)

let pp fmt p = Format.fprintf fmt "(%.3f, %.3f, %.3f)" p.x p.y p.z
