type atom = { element : Element.t; pos : Geometry.point; monomer : int }
type t = { name : string; atoms : atom array; num_monomers : int }

(* one water: O at the site, two H at the experimental geometry offsets *)
let water_atoms ~monomer center =
  let open Geometry in
  [
    { element = Element.O; pos = center; monomer };
    { element = Element.H; pos = add center (make 0.757 0.586 0.); monomer };
    { element = Element.H; pos = add center (make (-0.757) 0.586 0.); monomer };
  ]

let water_cluster ~rng n =
  if n <= 0 then invalid_arg "Molecule.water_cluster: n must be positive";
  (* smallest cube holding n sites, ~3 Å lattice with 0.3 Å jitter *)
  let side = int_of_float (Float.ceil (float_of_int n ** (1. /. 3.))) in
  let spacing = 3.1 in
  let atoms = ref [] in
  let placed = ref 0 in
  for ix = 0 to side - 1 do
    for iy = 0 to side - 1 do
      for iz = 0 to side - 1 do
        if !placed < n then begin
          let jitter () = Numerics.Rng.uniform rng ~lo:(-0.3) ~hi:0.3 in
          let center =
            Geometry.make
              ((float_of_int ix *. spacing) +. jitter ())
              ((float_of_int iy *. spacing) +. jitter ())
              ((float_of_int iz *. spacing) +. jitter ())
          in
          atoms := List.rev_append (water_atoms ~monomer:!placed center) !atoms;
          incr placed
        end
      done
    done
  done;
  {
    name = Printf.sprintf "(H2O)%d" n;
    atoms = Array.of_list (List.rev !atoms);
    num_monomers = n;
  }

type residue = Gly | Ala | Ser | Leu | Phe | Trp

(* heavy-atom + hydrogen compositions of the free amino acids *)
let residue_atoms = function
  | Gly -> Element.[ N; C; C; O; H; H; H; H; H ]
  | Ala -> Element.[ N; C; C; O; C; H; H; H; H; H; H; H ]
  | Ser -> Element.[ N; C; C; O; C; O; H; H; H; H; H; H; H ]
  | Leu -> Element.[ N; C; C; O; C; C; C; C; H; H; H; H; H; H; H; H; H; H; H ]
  | Phe -> Element.[ N; C; C; O; C; C; C; C; C; C; C; H; H; H; H; H; H; H; H; H; H ]
  | Trp -> Element.[ N; C; C; O; C; C; C; C; C; C; C; C; N; H; H; H; H; H; H; H; H; H; H; H ]

let residue_name = function
  | Gly -> "G"
  | Ala -> "A"
  | Ser -> "S"
  | Leu -> "L"
  | Phe -> "F"
  | Trp -> "W"

(* place residue atoms compactly around a backbone site *)
let place_residue ~monomer center elements =
  List.mapi
    (fun i e ->
      (* deterministic small offsets so atoms of one residue stay close *)
      let fi = float_of_int i in
      let pos =
        Geometry.add center
          (Geometry.make
             (0.5 *. cos (fi *. 2.1))
             (0.5 *. sin (fi *. 2.1))
             (0.3 *. cos (fi *. 1.3)))
      in
      { element = e; pos; monomer })
    elements

let chain name residues =
  let spacing = 3.8 in
  let atoms =
    List.concat
      (List.mapi
         (fun i r ->
           let center = Geometry.make (float_of_int i *. spacing) 0. 0. in
           place_residue ~monomer:i center (residue_atoms r))
         residues)
  in
  { name; atoms = Array.of_list atoms; num_monomers = List.length residues }

let polyalanine n =
  if n <= 0 then invalid_arg "Molecule.polyalanine: n must be positive";
  chain (Printf.sprintf "(Ala)%d" n) (List.init n (fun _ -> Ala))

let polypeptide ~rng:_ residues =
  if residues = [] then invalid_arg "Molecule.polypeptide: empty sequence";
  let name = String.concat "" (List.map residue_name residues) in
  chain name residues

let random_peptide ~rng n =
  if n <= 0 then invalid_arg "Molecule.random_peptide: n must be positive";
  let all = [| Gly; Ala; Ser; Leu; Phe; Trp |] in
  let residues = List.init n (fun _ -> Numerics.Rng.choose rng all) in
  chain (Printf.sprintf "peptide%d" n) residues

let solvated_peptide ~rng ~residues ~waters =
  if residues <= 0 || waters <= 0 then
    invalid_arg "Molecule.solvated_peptide: counts must be positive";
  let all = [| Gly; Ala; Ser; Leu; Phe; Trp |] in
  let sequence = List.init residues (fun _ -> Numerics.Rng.choose rng all) in
  let backbone = chain "solute" sequence in
  (* waters on a loose helix around the chain axis, ~4-6 Å out *)
  let spacing = 3.8 in
  let chain_len = float_of_int residues *. spacing in
  let water_atoms_list =
    List.concat
      (List.init waters (fun w ->
           let t = float_of_int w /. float_of_int waters in
           let angle = (float_of_int w *. 2.399) +. Numerics.Rng.uniform rng ~lo:(-0.2) ~hi:0.2 in
           let radius = Numerics.Rng.uniform rng ~lo:4.5 ~hi:6.5 in
           let center =
             Geometry.make (t *. chain_len) (radius *. cos angle) (radius *. sin angle)
           in
           water_atoms ~monomer:(residues + w) center))
  in
  {
    name = Printf.sprintf "%s+(H2O)%d" backbone.name waters;
    atoms = Array.append backbone.atoms (Array.of_list water_atoms_list);
    num_monomers = residues + waters;
  }

let monomer_atoms m i =
  if i < 0 || i >= m.num_monomers then invalid_arg "Molecule.monomer_atoms: index out of range";
  Array.to_list (Array.of_seq (Seq.filter (fun a -> a.monomer = i) (Array.to_seq m.atoms)))

let monomer_centroid m i =
  Geometry.centroid (List.map (fun a -> a.pos) (monomer_atoms m i))

let num_atoms m = Array.length m.atoms

let pp fmt m =
  Format.fprintf fmt "%s: %d atoms, %d monomers" m.name (num_atoms m) m.num_monomers
