type t = {
  id : int;
  monomers : int list;
  elements : Element.t list;
  nbf : int;
  centroid : Geometry.point;
}

let fragment ?(per_fragment = 1) (m : Molecule.t) basis =
  if per_fragment <= 0 then invalid_arg "Fragment.fragment: per_fragment must be positive";
  let nfrags = (m.Molecule.num_monomers + per_fragment - 1) / per_fragment in
  Array.init nfrags (fun id ->
      let first = id * per_fragment in
      let last = Stdlib.min (first + per_fragment - 1) (m.Molecule.num_monomers - 1) in
      let monomers = List.init (last - first + 1) (fun k -> first + k) in
      let atoms = List.concat_map (Molecule.monomer_atoms m) monomers in
      let elements = List.map (fun a -> a.Molecule.element) atoms in
      let nbf = Basis.nbf basis elements in
      let centroid = Geometry.centroid (List.map (fun a -> a.Molecule.pos) atoms) in
      { id; monomers; elements; nbf; centroid })

let distance f g = Geometry.dist f.centroid g.centroid
let total_nbf frags = Array.fold_left (fun acc f -> acc + f.nbf) 0 frags

let pp fmt f =
  Format.fprintf fmt "frag%d: %d monomers, %d bf at %a" f.id (List.length f.monomers) f.nbf
    Geometry.pp f.centroid
