(** FMO fragments: groups of natural monomers.

    The standard practice the paper follows: water clusters are
    fragmented at one or two molecules per fragment; proteins at one or
    two residues per fragment. A fragment's basis-function count (under
    the chosen basis set) is the size measure driving SCF cost. *)

type t = {
  id : int;
  monomers : int list;  (** natural monomer indices composing this fragment *)
  elements : Element.t list;
  nbf : int;  (** basis functions under the chosen basis *)
  centroid : Geometry.point;
}

(** [fragment ?per_fragment molecule basis] — split consecutive natural
    monomers into fragments of [per_fragment] (default 1) monomers; a
    smaller last fragment absorbs the remainder. *)
val fragment : ?per_fragment:int -> Molecule.t -> Basis.t -> t array

(** [distance f g] — centroid separation in Å (dimer classification). *)
val distance : t -> t -> float

(** [total_nbf frags]. *)
val total_nbf : t array -> int

val pp : Format.formatter -> t -> unit
