type schedule = Dynamic | Static of { monomer : int array; dimer : int array }

type phase_plan = { partition : Gddi.Group.partition; schedule : Gddi.Sim.schedule }

type result = {
  total_time : float;
  monomer_time : float;
  dimer_time : float;
  sweeps : Gddi.Sim.result list;
  dimer : Gddi.Sim.result;
  utilization : float;
}

let sweep_work_factor (plan : Task.plan) ~sweep =
  if sweep < 0 || sweep >= plan.Task.scc_iterations then
    invalid_arg "Fmo_run.sweep_work_factor: sweep out of range";
  if sweep = 0 then 1. else plan.Task.scc_later_sweep_factor

let benchmark ~rng machine task ~nodes = Cost_model.sample_task rng machine task ~nodes

let run_plan ?(dispatch_latency = 0.) ~rng machine (plan : Task.plan) ~monomer ~dimer =
  let duration_of tasks factor ~task ~group =
    let t = tasks.(task) in
    let law =
      Cost_model.law machine ~work_gflops:(t.Task.work_gflops *. factor) ~nbf:t.Task.nbf
    in
    Cost_model.sample rng machine law ~nodes:group.Gddi.Group.nodes
  in
  let sweeps = ref [] in
  let monomer_time = ref 0. in
  for sweep = 0 to plan.Task.scc_iterations - 1 do
    let factor = sweep_work_factor plan ~sweep in
    let r =
      Gddi.Sim.run_phase ~dispatch_latency monomer.partition
        ~num_tasks:(Array.length plan.Task.monomers)
        ~duration:(duration_of plan.Task.monomers factor)
        monomer.schedule
    in
    monomer_time := !monomer_time +. r.Gddi.Sim.makespan;
    sweeps := r :: !sweeps
  done;
  let dimers = Task.correction_tasks plan in
  let dimer_result =
    Gddi.Sim.run_phase ~dispatch_latency dimer.partition ~num_tasks:(Array.length dimers)
      ~duration:(duration_of dimers 1.) dimer.schedule
  in
  let dimer_time = dimer_result.Gddi.Sim.makespan in
  let total_time = !monomer_time +. dimer_time in
  (* node-weighted busy fraction across all phases; each phase is
     weighted by its own partition *)
  let busy_of partition (r : Gddi.Sim.result) =
    let acc = ref 0. in
    Array.iteri
      (fun g b -> acc := !acc +. (b *. float_of_int partition.(g).Gddi.Group.nodes))
      r.Gddi.Sim.group_busy;
    !acc
  in
  let monomer_nodes = float_of_int (Gddi.Group.total_nodes monomer.partition) in
  let dimer_nodes = float_of_int (Gddi.Group.total_nodes dimer.partition) in
  let total_capacity = (monomer_nodes *. !monomer_time) +. (dimer_nodes *. dimer_time) in
  let total_busy =
    List.fold_left
      (fun acc r -> acc +. busy_of monomer.partition r)
      (busy_of dimer.partition dimer_result)
      !sweeps
  in
  let utilization = if total_capacity <= 0. then 1. else total_busy /. total_capacity in
  {
    total_time;
    monomer_time = !monomer_time;
    dimer_time;
    sweeps = List.rev !sweeps;
    dimer = dimer_result;
    utilization;
  }

let run ?(dispatch_latency = 0.) ~rng machine plan partition schedule =
  let monomer_schedule, dimer_schedule =
    match schedule with
    | Dynamic -> (Gddi.Sim.Dynamic, Gddi.Sim.Dynamic)
    | Static { monomer; dimer } -> (Gddi.Sim.Static monomer, Gddi.Sim.Static dimer)
  in
  run_plan ~dispatch_latency ~rng machine plan
    ~monomer:{ partition; schedule = monomer_schedule }
    ~dimer:{ partition; schedule = dimer_schedule }
