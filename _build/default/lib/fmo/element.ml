type t = H | C | N | O | S

let symbol = function H -> "H" | C -> "C" | N -> "N" | O -> "O" | S -> "S"
let atomic_number = function H -> 1 | C -> 6 | N -> 7 | O -> 8 | S -> 16
let electrons = atomic_number
