type kind = Monomer | Scf_dimer | Es_dimer | Scf_trimer

type t = {
  id : int;
  kind : kind;
  frag1 : int;
  frag2 : int option;
  frag3 : int option;
  nbf : int;
  work_gflops : float;
}

type plan = {
  fragments : Fragment.t array;
  monomers : t array;
  scf_dimers : t array;
  es_dimers : t array;
  trimers : t array;  (* empty for FMO2 plans *)
  scc_iterations : int;
  scc_later_sweep_factor : float;
}

(* ~12 SCF cycles of O(nbf^2.7) Fock build + diagonalization work *)
let scf_cycles = 12.
let scf_work_gflops nbf = 0.002 *. scf_cycles *. (float_of_int nbf ** 2.7)
let es_work_gflops nbf = 1e-5 *. (float_of_int nbf ** 2.)

(* embedded monomers converge slower the more neighbours polarize them:
   interior fragments of a cluster carry more SCC work than surface
   ones. This is the physical source of load imbalance in FMO. *)
let embedding_factor ~neighbors = 1. +. (0.08 *. float_of_int neighbors)

let fmo2_plan ?(scf_cutoff = 7.0) ?(scc_iterations = 8) ?(scc_later_sweep_factor = 0.35) frags =
  if Array.length frags = 0 then invalid_arg "Task.fmo2_plan: no fragments";
  if scc_iterations < 1 then invalid_arg "Task.fmo2_plan: scc_iterations must be >= 1";
  let nf = Array.length frags in
  (* classify pairs first: SCF-dimer neighbours drive monomer embedding work *)
  let near_pairs = ref [] and far_pairs = ref [] in
  let neighbors = Array.make nf 0 in
  for i = 0 to nf - 1 do
    for j = i + 1 to nf - 1 do
      if Fragment.distance frags.(i) frags.(j) <= scf_cutoff then begin
        near_pairs := (i, j) :: !near_pairs;
        neighbors.(i) <- neighbors.(i) + 1;
        neighbors.(j) <- neighbors.(j) + 1
      end
      else far_pairs := (i, j) :: !far_pairs
    done
  done;
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let monomers =
    Array.mapi
      (fun i (f : Fragment.t) ->
        {
          id = fresh ();
          kind = Monomer;
          frag1 = f.Fragment.id;
          frag2 = None;
          frag3 = None;
          nbf = f.Fragment.nbf;
          work_gflops =
            scf_work_gflops f.Fragment.nbf *. embedding_factor ~neighbors:neighbors.(i);
        })
      frags
  in
  let dimer kind work (i, j) =
    let nbf = frags.(i).Fragment.nbf + frags.(j).Fragment.nbf in
    { id = fresh (); kind; frag1 = i; frag2 = Some j; frag3 = None; nbf; work_gflops = work nbf }
  in
  let scf_dimers =
    Array.of_list (List.rev_map (dimer Scf_dimer scf_work_gflops) !near_pairs)
  in
  let es_dimers = Array.of_list (List.rev_map (dimer Es_dimer es_work_gflops) !far_pairs) in
  {
    fragments = frags;
    monomers;
    scf_dimers;
    es_dimers;
    trimers = [||];
    scc_iterations;
    scc_later_sweep_factor;
  }

(* FMO3: three-body corrections for fragment triples whose members are
   all pairwise within the (tighter) trimer cutoff. Each trimer is a
   full SCF over the union basis — the expensive tail of the method. *)
let fmo3_plan ?(scf_cutoff = 7.0) ?(trimer_cutoff = 4.5) ?scc_iterations
    ?scc_later_sweep_factor frags =
  if trimer_cutoff > scf_cutoff then
    invalid_arg "Task.fmo3_plan: trimer cutoff must not exceed the dimer cutoff";
  let base = fmo2_plan ~scf_cutoff ?scc_iterations ?scc_later_sweep_factor frags in
  let nf = Array.length frags in
  let next_id =
    ref
      (Array.length base.monomers + Array.length base.scf_dimers + Array.length base.es_dimers)
  in
  let close i j = Fragment.distance frags.(i) frags.(j) <= trimer_cutoff in
  let trimers = ref [] in
  for i = 0 to nf - 1 do
    for j = i + 1 to nf - 1 do
      if close i j then
        for k = j + 1 to nf - 1 do
          if close i k && close j k then begin
            let nbf =
              frags.(i).Fragment.nbf + frags.(j).Fragment.nbf + frags.(k).Fragment.nbf
            in
            trimers :=
              {
                id = !next_id;
                kind = Scf_trimer;
                frag1 = i;
                frag2 = Some j;
                frag3 = Some k;
                nbf;
                work_gflops = scf_work_gflops nbf;
              }
              :: !trimers;
            incr next_id
          end
        done
    done
  done;
  { base with trimers = Array.of_list (List.rev !trimers) }

let dimer_tasks plan = Array.append plan.scf_dimers plan.es_dimers

(* the post-SCC corrections phase: dimers, then trimers (FMO3) *)
let correction_tasks plan = Array.append (dimer_tasks plan) plan.trimers

let total_work plan =
  let sweeps =
    1. +. (float_of_int (plan.scc_iterations - 1) *. plan.scc_later_sweep_factor)
  in
  let monomer_work =
    Array.fold_left (fun acc t -> acc +. t.work_gflops) 0. plan.monomers *. sweeps
  in
  let dimer_work =
    Array.fold_left (fun acc t -> acc +. t.work_gflops) 0. (correction_tasks plan)
  in
  monomer_work +. dimer_work

let kind_to_string = function
  | Monomer -> "monomer"
  | Scf_dimer -> "scf-dimer"
  | Es_dimer -> "es-dimer"
  | Scf_trimer -> "scf-trimer"

let pp fmt t =
  Format.fprintf fmt "%s#%d frag%d%s%s nbf=%d %.2f GF" (kind_to_string t.kind) t.id t.frag1
    (match t.frag2 with Some j -> Printf.sprintf "-%d" j | None -> "")
    (match t.frag3 with Some k -> Printf.sprintf "-%d" k | None -> "")
    t.nbf t.work_gflops
