(** FMO2 task graph.

    FMO2 energy = monomer SCFs iterated to self-consistent charge (SCC)
    convergence, then dimer corrections: full SCF dimers for fragment
    pairs within a distance cutoff, cheap electrostatic (ES)
    approximations for far pairs. Each task is coarse — one fragment (or
    pair) SCF run inside one processor group — which is exactly the
    "few large tasks of diverse size" regime where the paper argues
    static balancing beats dynamic. *)

type kind = Monomer | Scf_dimer | Es_dimer | Scf_trimer

type t = {
  id : int;
  kind : kind;
  frag1 : int;
  frag2 : int option;  (** second fragment for dimer/trimer tasks *)
  frag3 : int option;  (** third fragment for trimer tasks *)
  nbf : int;
  work_gflops : float;  (** ground-truth work (hidden from the decision layer) *)
}

type plan = {
  fragments : Fragment.t array;
  monomers : t array;  (** one per fragment; ids 0..F-1 *)
  scf_dimers : t array;
  es_dimers : t array;
  trimers : t array;  (** FMO3 three-body corrections; empty for FMO2 *)
  scc_iterations : int;  (** monomer-loop sweeps until SCC convergence *)
  scc_later_sweep_factor : float;  (** work factor for sweeps after the first *)
}

(** [scf_work_gflops nbf] — synthetic SCF cost, O(nbf^2.7). *)
val scf_work_gflops : int -> float

(** [es_work_gflops nbf] — electrostatic-dimer cost, O(nbf²). *)
val es_work_gflops : int -> float

(** [embedding_factor ~neighbors] — monomer SCC work multiplier from the
    embedding field: interior fragments (many SCF-dimer neighbours)
    converge slower than surface ones. The physical source of load
    imbalance in otherwise homogeneous clusters. *)
val embedding_factor : neighbors:int -> float

(** [fmo2_plan ?scf_cutoff ?scc_iterations frags] — build the task
    graph. [scf_cutoff] (Å, default 7.0) separates SCF from ES dimers by
    centroid distance. *)
val fmo2_plan :
  ?scf_cutoff:float ->
  ?scc_iterations:int ->
  ?scc_later_sweep_factor:float ->
  Fragment.t array ->
  plan

(** [fmo3_plan ?scf_cutoff ?trimer_cutoff frags] — FMO2 plan plus
    three-body SCF corrections for fragment triples pairwise within
    [trimer_cutoff] (Å, default 4.5; must not exceed [scf_cutoff]). *)
val fmo3_plan :
  ?scf_cutoff:float ->
  ?trimer_cutoff:float ->
  ?scc_iterations:int ->
  ?scc_later_sweep_factor:float ->
  Fragment.t array ->
  plan

(** [dimer_tasks plan] — SCF dimers followed by ES dimers (the dimer
    phase submission order). *)
val dimer_tasks : plan -> t array

(** [correction_tasks plan] — the full post-SCC corrections phase:
    dimers then trimers. What the runner's second phase executes. *)
val correction_tasks : plan -> t array

(** [total_work plan] — total GFLOP including all SCC sweeps. *)
val total_work : plan -> float

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
