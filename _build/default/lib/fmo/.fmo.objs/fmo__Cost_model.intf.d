lib/fmo/cost_model.mli: Machine Numerics Scaling_law Task
