lib/fmo/element.mli:
