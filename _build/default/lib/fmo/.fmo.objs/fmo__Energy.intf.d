lib/fmo/energy.mli: Fmo_run Fragment Task
