lib/fmo/task.ml: Array Format Fragment List Printf
