lib/fmo/fmo_run.ml: Array Cost_model Gddi List Task
