lib/fmo/task.mli: Format Fragment
