lib/fmo/cost_model.ml: Machine Numerics Scaling_law Task
