lib/fmo/fragment.mli: Basis Element Format Geometry Molecule
