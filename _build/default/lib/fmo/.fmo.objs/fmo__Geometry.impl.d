lib/fmo/geometry.ml: Format List
