lib/fmo/fragment.ml: Array Basis Element Format Geometry List Molecule Stdlib
