lib/fmo/energy.ml: Array Element Float Fmo_run Fragment Gddi List Task
