lib/fmo/basis.ml: Element List
