lib/fmo/geometry.mli: Format
