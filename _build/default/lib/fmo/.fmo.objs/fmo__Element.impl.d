lib/fmo/element.ml:
