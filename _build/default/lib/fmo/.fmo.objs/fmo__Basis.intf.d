lib/fmo/basis.mli: Element
