lib/fmo/molecule.ml: Array Element Float Format Geometry List Numerics Printf Seq String
