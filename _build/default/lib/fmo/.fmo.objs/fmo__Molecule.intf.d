lib/fmo/molecule.mli: Element Format Geometry Numerics
