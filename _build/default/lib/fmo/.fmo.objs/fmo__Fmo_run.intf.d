lib/fmo/fmo_run.mli: Gddi Machine Numerics Task
