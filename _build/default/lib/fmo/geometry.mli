(** 3-D points for molecular geometry (Ångström units). *)

type point = { x : float; y : float; z : float }

val origin : point
val make : float -> float -> float -> point
val add : point -> point -> point
val sub : point -> point -> point
val scale : float -> point -> point
val dist : point -> point -> float
val norm : point -> float

(** [centroid pts] — arithmetic mean. Raises on empty. *)
val centroid : point list -> point

val pp : Format.formatter -> point -> unit
