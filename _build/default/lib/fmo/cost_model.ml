let law (m : Machine.t) ~work_gflops ~nbf =
  if work_gflops < 0. then invalid_arg "Cost_model.law: negative work";
  let scalable = work_gflops *. (1. -. m.Machine.serial_fraction) /. m.Machine.node_gflops in
  let serial = work_gflops *. m.Machine.serial_fraction /. m.Machine.node_gflops in
  (* per-node synchronization/communication overhead grows with group
     size; tiny on Intrepid (the paper observed b, c "almost zero") *)
  let comm = m.Machine.comm_ns_per_word *. 1e-8 *. float_of_int nbf in
  Scaling_law.make ~a:scalable ~b:comm ~c:m.Machine.efficiency_exponent ~d:serial

let task_law m (t : Task.t) = law m ~work_gflops:t.Task.work_gflops ~nbf:t.Task.nbf

let expected l ~nodes = Scaling_law.eval_int l nodes

let sample rng (m : Machine.t) l ~nodes =
  let base = expected l ~nodes in
  if m.Machine.noise_sigma <= 0. then base
  else begin
    (* mean-one log-normal noise *)
    let sigma = m.Machine.noise_sigma in
    base *. Numerics.Rng.lognormal rng ~mu:(-0.5 *. sigma *. sigma) ~sigma
  end

let sample_task rng m t ~nodes = sample rng m (task_law m t) ~nodes
