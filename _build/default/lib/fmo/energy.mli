(** Synthetic FMO2 energy bookkeeping.

    The FMO2 total energy is
    [E = Σ_I E_I + Σ_{I<J} (E_IJ − E_I − E_J)] with far pairs
    approximated electrostatically. The simulator does not solve
    quantum chemistry, but it assigns every task a deterministic
    synthetic energy contribution (a function of composition and
    geometry only), so a run produces a total energy that must be
    {e bit-identical across schedulers and partitions} — the
    metamorphic invariant the test suite checks: load balancing may
    change the wall clock, never the science. Units: hartree-like. *)

(** [monomer_energy frag] — synthetic monomer SCF energy (negative,
    roughly proportional to electron count). *)
val monomer_energy : Fragment.t -> float

(** [dimer_correction f g ~scf] — pair interaction energy
    [E_IJ − E_I − E_J]: a distance-damped attraction for SCF dimers, a
    weaker electrostatic tail for far (ES) pairs. *)
val dimer_correction : Fragment.t -> Fragment.t -> scf:bool -> float

(** [task_energy plan task] — the contribution of one task. Monomer
    tasks return the monomer energy; dimer tasks the pair correction. *)
val task_energy : Task.plan -> Task.t -> float

(** [total_energy plan] — the FMO2 total. *)
val total_energy : Task.plan -> float

(** [energy_of_run plan result] — total energy recomputed from the
    tasks that the executed {!Fmo_run.result} actually ran (every task
    exactly once, regardless of schedule). Equal to [total_energy] for
    any valid run. *)
val energy_of_run : Task.plan -> Fmo_run.result -> float
