type t = Sto3g | B6_31g | B6_31gd

let name = function Sto3g -> "STO-3G" | B6_31g -> "6-31G" | B6_31gd -> "6-31G*"

(* standard counts: H: 1s / 2s / 2s; first row: 5 / 9 / 15 (with 6 cartesian d);
   S (third row): 9 / 13 / 19 *)
let nbf_element basis (e : Element.t) =
  match (basis, e) with
  | Sto3g, Element.H -> 1
  | Sto3g, (Element.C | Element.N | Element.O) -> 5
  | Sto3g, Element.S -> 9
  | B6_31g, Element.H -> 2
  | B6_31g, (Element.C | Element.N | Element.O) -> 9
  | B6_31g, Element.S -> 13
  | B6_31gd, Element.H -> 2
  | B6_31gd, (Element.C | Element.N | Element.O) -> 15
  | B6_31gd, Element.S -> 19

let nbf basis elements = List.fold_left (fun acc e -> acc + nbf_element basis e) 0 elements
