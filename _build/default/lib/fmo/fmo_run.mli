(** End-to-end simulated FMO2 execution on a group partition.

    Drives the {!Gddi} simulator through the FMO2 phase structure:
    [scc_iterations] barrier-separated monomer sweeps (the SCC loop),
    then one dimer phase (SCF dimers then ES dimers). This is the
    "Execute" step of HSLB and the testbed for every scheduler
    comparison. *)

type schedule =
  | Dynamic  (** stock GAMESS/GDDI dynamic load balancing *)
  | Static of { monomer : int array; dimer : int array }
      (** precomputed task→group maps for each phase *)

(** One phase's execution plan: GDDI can reconfigure groups at the FMO
    step boundary, so the monomer and dimer phases may use different
    partitions. *)
type phase_plan = { partition : Gddi.Group.partition; schedule : Gddi.Sim.schedule }

type result = {
  total_time : float;
  monomer_time : float;  (** sum over SCC sweeps *)
  dimer_time : float;
  sweeps : Gddi.Sim.result list;  (** per-sweep traces *)
  dimer : Gddi.Sim.result;
  utilization : float;  (** node-weighted busy fraction over the run *)
}

(** [run ~rng machine plan partition schedule] — simulate one FMO2
    energy evaluation with a single partition for both phases. Noise is
    drawn from [rng]; pass a fresh generator for an independent
    replica. *)
val run :
  ?dispatch_latency:float ->
  rng:Numerics.Rng.t ->
  Machine.t ->
  Task.plan ->
  Gddi.Group.partition ->
  schedule ->
  result

(** [run_plan ~rng machine plan ~monomer ~dimer] — simulate with
    phase-specific partitions (GDDI group reconfiguration between the
    monomer and dimer steps). *)
val run_plan :
  ?dispatch_latency:float ->
  rng:Numerics.Rng.t ->
  Machine.t ->
  Task.plan ->
  monomer:phase_plan ->
  dimer:phase_plan ->
  result

(** [benchmark ~rng machine task ~nodes] — one benchmark measurement of
    a task class on a group of [nodes] nodes (HSLB's "Gather" step). *)
val benchmark : rng:Numerics.Rng.t -> Machine.t -> Task.t -> nodes:int -> float

(** [predicted_sweep_duration machine plan task ~sweep] — noise-free
    duration helper exposing the SCC sweep-work scaling (sweep 0 is a
    full SCF; later sweeps are cheaper). *)
val sweep_work_factor : Task.plan -> sweep:int -> float
