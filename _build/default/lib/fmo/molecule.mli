(** Molecular systems and the generators for the paper's workloads.

    Atoms carry a [monomer] label assigning them to a natural FMO
    monomer (one water molecule, one peptide residue); fragmentation
    ({!Fragment}) groups one or more monomers per fragment, which is how
    FMO practitioners control fragment size. *)

type atom = {
  element : Element.t;
  pos : Geometry.point;
  monomer : int;  (** natural monomer index this atom belongs to *)
}

type t = {
  name : string;
  atoms : atom array;
  num_monomers : int;
}

(** [water_cluster ~rng n] — (H₂O)ₙ on a jittered cubic lattice with
    ~3 Å spacing (the paper's strong-scaling workload). *)
val water_cluster : rng:Numerics.Rng.t -> int -> t

(** Residue types for peptide generation (size-heterogeneous). *)
type residue = Gly | Ala | Ser | Leu | Phe | Trp

val residue_atoms : residue -> Element.t list

(** [polyalanine n] — homogeneous n-residue chain (α-helix-like axis
    placement, 3.8 Å spacing). *)
val polyalanine : int -> t

(** [polypeptide ~rng residues] — chain with the given residue
    sequence. *)
val polypeptide : rng:Numerics.Rng.t -> residue list -> t

(** [random_peptide ~rng n] — n residues drawn from all types;
    the heterogeneous workload for experiment E5. *)
val random_peptide : rng:Numerics.Rng.t -> int -> t

(** [solvated_peptide ~rng ~residues ~waters] — a random peptide wrapped
    in a shell of water molecules placed around the chain (the classic
    solute+solvent FMO setup: two very different fragment populations).
    Monomers 0..residues-1 are the residues, the rest the waters. *)
val solvated_peptide : rng:Numerics.Rng.t -> residues:int -> waters:int -> t

(** [monomer_atoms m i] — atoms of natural monomer [i]. *)
val monomer_atoms : t -> int -> atom list

(** [monomer_centroid m i] — centroid of monomer [i]'s atoms. *)
val monomer_centroid : t -> int -> Geometry.point

val num_atoms : t -> int
val pp : Format.formatter -> t -> unit
