(* Deterministic synthetic energies: plausible magnitudes and decay
   behaviour, purely a function of composition and geometry so any
   correct execution reproduces them exactly. *)

let electrons (f : Fragment.t) =
  List.fold_left (fun acc e -> acc + Element.electrons e) 0 f.Fragment.elements

(* roughly -(electron count): water (10 e-) ~ -76 Ha scale factor *)
let monomer_energy f =
  let ne = float_of_int (electrons f) in
  -.(7.6 *. ne) -. (0.01 *. float_of_int f.Fragment.nbf)

let dimer_correction f g ~scf =
  let r = Float.max 0.5 (Fragment.distance f g) in
  let nef = float_of_int (electrons f) and neg = float_of_int (electrons g) in
  if scf then
    (* short-range: exchange-repulsion + induction-like attraction *)
    -.(0.002 *. nef *. neg /. (r *. r)) +. (0.05 *. exp (-.r))
  else
    (* far pairs: classical electrostatics, 1/r^3 dipole-dipole tail *)
    -.(0.0005 *. nef *. neg /. (r *. r *. r))

(* three-body term: small, decays with the triangle perimeter *)
let trimer_correction f g h =
  let perimeter =
    Fragment.distance f g +. Fragment.distance g h +. Fragment.distance f h
  in
  -.(0.003 *. exp (-0.4 *. perimeter))

let task_energy (plan : Task.plan) (t : Task.t) =
  let frag i = plan.Task.fragments.(i) in
  match t.Task.kind with
  | Task.Monomer -> monomer_energy (frag t.Task.frag1)
  | Task.Scf_dimer -> (
    match t.Task.frag2 with
    | Some j -> dimer_correction (frag t.Task.frag1) (frag j) ~scf:true
    | None -> invalid_arg "Energy.task_energy: dimer without second fragment")
  | Task.Es_dimer -> (
    match t.Task.frag2 with
    | Some j -> dimer_correction (frag t.Task.frag1) (frag j) ~scf:false
    | None -> invalid_arg "Energy.task_energy: dimer without second fragment")
  | Task.Scf_trimer -> (
    match (t.Task.frag2, t.Task.frag3) with
    | Some j, Some k -> trimer_correction (frag t.Task.frag1) (frag j) (frag k)
    | (Some _ | None), _ -> invalid_arg "Energy.task_energy: trimer without three fragments")

let total_energy plan =
  let acc = ref 0. in
  Array.iter (fun t -> acc := !acc +. task_energy plan t) plan.Task.monomers;
  Array.iter (fun t -> acc := !acc +. task_energy plan t) (Task.correction_tasks plan);
  !acc

let energy_of_run plan (r : Fmo_run.result) =
  (* monomer contributions from the last SCC sweep's events; dimer
     contributions from the dimer phase events *)
  let monomer_events =
    match List.rev r.Fmo_run.sweeps with
    | last :: _ -> last.Gddi.Sim.events
    | [] -> invalid_arg "Energy.energy_of_run: no monomer sweeps"
  in
  let acc = ref 0. in
  List.iter
    (fun (e : Gddi.Sim.event) ->
      acc := !acc +. task_energy plan plan.Task.monomers.(e.Gddi.Sim.task))
    monomer_events;
  let corrections = Task.correction_tasks plan in
  List.iter
    (fun (e : Gddi.Sim.event) -> acc := !acc +. task_energy plan corrections.(e.Gddi.Sim.task))
    r.Fmo_run.dimer.Gddi.Sim.events;
  !acc
