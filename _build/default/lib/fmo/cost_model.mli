(** Ground-truth task runtimes on the simulated machine.

    Every task follows a hidden scaling law
    [T(n) = a/n^c + b·n + d] derived from its work and the machine's
    characteristics; simulated executions draw log-normal multiplicative
    noise around it. This substitutes for running GAMESS on Blue Gene/P:
    the decision layer observes only sampled times, never the law. *)

(** [law machine ~work_gflops ~nbf] — the hidden law for a task of the
    given size. *)
val law : Machine.t -> work_gflops:float -> nbf:int -> Scaling_law.t

(** [task_law machine task]. *)
val task_law : Machine.t -> Task.t -> Scaling_law.t

(** [expected law ~nodes] — noise-free time. *)
val expected : Scaling_law.t -> nodes:int -> float

(** [sample rng machine law ~nodes] — one noisy simulated execution. *)
val sample : Numerics.Rng.t -> Machine.t -> Scaling_law.t -> nodes:int -> float

(** [sample_task rng machine task ~nodes] — convenience composition. *)
val sample_task : Numerics.Rng.t -> Machine.t -> Task.t -> nodes:int -> float
