type t = {
  id : string;
  describes : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = E1_fit_quality.name; describes = E1_fit_quality.describes; run = E1_fit_quality.run };
    { id = E2_objectives.name; describes = E2_objectives.describes; run = E2_objectives.run };
    {
      id = E3_pred_vs_actual.name;
      describes = E3_pred_vs_actual.describes;
      run = E3_pred_vs_actual.run;
    };
    { id = E4_scaling.name; describes = E4_scaling.describes; run = E4_scaling.run };
    { id = E5_protein.name; describes = E5_protein.describes; run = E5_protein.run };
    { id = E6_solver.name; describes = E6_solver.describes; run = E6_solver.run };
    { id = E7_samples.name; describes = E7_samples.describes; run = E7_samples.run };
    { id = E8_cesm_table3.name; describes = E8_cesm_table3.describes; run = E8_cesm_table3.run };
    {
      id = E9_layout_scaling.name;
      describes = E9_layout_scaling.describes;
      run = E9_layout_scaling.run;
    };
    {
      id = E10_scheduler_ablation.name;
      describes = E10_scheduler_ablation.describes;
      run = E10_scheduler_ablation.run;
    };
    { id = E11_placement.name; describes = E11_placement.describes; run = E11_placement.run };
  ]

let find id =
  let prefix_matches e =
    String.length id <= String.length e.id && String.sub e.id 0 (String.length id) = id
  in
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> (
    match List.filter prefix_matches all with
    | [ e ] -> e
    | [] | _ :: _ -> raise Not_found)

let run_all ?quick fmt =
  List.iter
    (fun e ->
      Format.fprintf fmt "@.########## %s — %s ##########@." e.id e.describes;
      let t0 = Sys.time () in
      e.run ?quick fmt;
      Format.fprintf fmt "[%s finished in %.1f s]@." e.id (Sys.time () -. t0))
    all
