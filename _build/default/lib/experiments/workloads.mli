(** Shared deterministic workload construction for the experiments. *)

(** [machine ?noise ~num_nodes ()] — Intrepid-like Blue Gene/P slice. *)
val machine : ?noise:float -> num_nodes:int -> unit -> Machine.t

(** [water_plan ?seed ?per_fragment ~molecules ()] — (H₂O)ₙ FMO2 plan. *)
val water_plan : ?seed:int -> ?per_fragment:int -> molecules:int -> unit -> Fmo.Task.plan

(** [peptide_plan ?seed ~residues ()] — heterogeneous random-peptide
    FMO2 plan (experiment E5's workload). *)
val peptide_plan : ?seed:int -> residues:int -> unit -> Fmo.Task.plan

(** [rng seed] — fresh deterministic generator. *)
val rng : int -> Numerics.Rng.t
