(* E1 — per-class scaling curves and fit quality.

   Reproduces the paper's "scaling curves for each component" figure as
   a table: each task class of a water-cluster FMO2 plan is benchmarked
   at a handful of group sizes, the performance model is fitted, and we
   report the fitted coefficients, R² (the paper: "very close to 1 for
   each component") and the relative prediction error at held-out group
   sizes. *)

let name = "E1_fit_quality"
let describes = "Fig: per-class scaling curves; fitted a,b,c,d and R² per task class"

let run ?(quick = false) fmt =
  let molecules = if quick then 16 else 64 in
  let num_nodes = 4096 in
  let machine = Workloads.machine ~num_nodes () in
  let plan = Workloads.water_plan ~molecules () in
  let rng = Workloads.rng 42 in
  let config = Hslb.Fmo_app.default_config in
  let hp = Hslb.Fmo_app.plan_hslb ~rng machine plan ~n_total:num_nodes config in
  let rows fits =
    List.map
      (fun (fc : Hslb.Classes.fitted) ->
        let fit = fc.Hslb.Classes.fit in
        let law = fit.Hslb.Fitting.law in
        (* held-out check: compare fit to fresh benchmark samples *)
        let check_sizes = [ 3; 24; 96 ] in
        let errs =
          List.map
            (fun n ->
              let fresh = fc.Hslb.Classes.cls.Hslb.Classes.sample ~nodes:n in
              Float.abs (Hslb.Classes.predicted_time fc n -. fresh) /. fresh)
            check_sizes
        in
        let max_err = 100. *. List.fold_left Float.max 0. errs in
        [
          fc.Hslb.Classes.cls.Hslb.Classes.name;
          string_of_int fc.Hslb.Classes.cls.Hslb.Classes.count;
          Table.fs law.Scaling_law.a;
          Printf.sprintf "%.2e" law.Scaling_law.b;
          Table.fs law.Scaling_law.c;
          Table.fs law.Scaling_law.d;
          Printf.sprintf "%.4f" fit.Hslb.Fitting.r2;
          Printf.sprintf "%.1f%%" max_err;
        ])
      fits
  in
  Table.print fmt
    ~title:(Printf.sprintf "E1: fitted performance models, (H2O)%d monomer classes" molecules)
    ~header:[ "class"; "count"; "a"; "b"; "c"; "d"; "R2"; "holdout err" ]
    (rows hp.Hslb.Fmo_app.monomer_fits);
  Table.print fmt
    ~title:"E1: fitted performance models, dimer classes (first 10)"
    ~header:[ "class"; "count"; "a"; "b"; "c"; "d"; "R2"; "holdout err" ]
    (List.filteri (fun i _ -> i < 10) (rows hp.Hslb.Fmo_app.dimer_fits));
  let r2s =
    List.map
      (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.fit.Hslb.Fitting.r2)
      (hp.Hslb.Fmo_app.monomer_fits @ hp.Hslb.Fmo_app.dimer_fits)
  in
  Format.fprintf fmt "min R2 over all %d classes: %.4f (paper: R2 close to 1 everywhere)@."
    (List.length r2s)
    (List.fold_left Float.min 1. r2s)
