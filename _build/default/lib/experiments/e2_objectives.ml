(* E2 — objective-function comparison.

   The paper (section III-D) considers three objectives for the
   allocation MINLP and reports: min-max (used throughout) slightly
   better than max-min, and min-sum much worse. We solve the same
   monomer allocation under all three and execute each plan, reporting
   predicted and simulated makespans. *)

let name = "E2_objectives"
let describes = "Table: min-max vs max-min vs min-sum allocation quality"

let run ?(quick = false) fmt =
  let molecules = if quick then 16 else 32 in
  let n_total = if quick then 128 else 512 in
  let machine = Workloads.machine ~num_nodes:n_total () in
  let plan = Workloads.water_plan ~molecules () in
  let rows =
    List.map
      (fun objective ->
        let config = { Hslb.Fmo_app.default_config with objective } in
        let hp, run =
          Hslb.Fmo_app.run_hslb ~rng:(Workloads.rng 7) machine plan ~n_total config
        in
        let sweep0_pred =
          hp.Hslb.Fmo_app.allocation.Hslb.Alloc_model.predicted_makespan
        in
        [
          Hslb.Objective.to_string objective;
          Table.fs sweep0_pred;
          Table.fs hp.Hslb.Fmo_app.predicted_total;
          Table.fs run.Fmo.Fmo_run.total_time;
          Printf.sprintf "%.1f%%" (100. *. run.Fmo.Fmo_run.utilization);
        ])
      Hslb.Objective.all
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E2: objective comparison, (H2O)%d on %d nodes" molecules n_total)
    ~header:[ "objective"; "pred sweep"; "pred total"; "actual total"; "utilization" ]
    rows;
  Format.fprintf fmt
    "expected shape: min-max <= max-min < min-sum; the gap concentrates in the per-sweep \
     makespan column (dimer planning is shared). examples/objective_study.ml shows the \
     undiluted allocation-level effect the paper reports@."
