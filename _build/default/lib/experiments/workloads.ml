let machine ?(noise = 0.02) ~num_nodes () =
  Machine.make ~name:"intrepid-slice" ~num_nodes ~noise_sigma:noise ()

let rng seed = Numerics.Rng.create seed

let water_plan ?(seed = 1) ?(per_fragment = 1) ~molecules () =
  let molecule = Fmo.Molecule.water_cluster ~rng:(rng seed) molecules in
  Fmo.Task.fmo2_plan (Fmo.Fragment.fragment ~per_fragment molecule Fmo.Basis.B6_31gd)

let peptide_plan ?(seed = 2) ~residues () =
  let molecule = Fmo.Molecule.random_peptide ~rng:(rng seed) residues in
  Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd)
