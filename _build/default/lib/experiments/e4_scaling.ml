(* E4 — strong-scaling comparison: HSLB vs dynamic vs even-static.

   The paper's headline figure: total FMO2 time vs node count for the
   stock dynamic load balancer and the HSLB static plan, up to very
   large node counts. Expected shape: HSLB at least matches DLB at
   small scale and pulls away as the machine grows (the paper reports
   ~25% at its largest configuration). We also report parallel
   efficiency relative to the smallest configuration. *)

let name = "E4_scaling"
let describes = "Fig: strong scaling of HSLB vs dynamic vs even-static"

let run ?(quick = false) fmt =
  let molecules = if quick then 16 else 64 in
  let node_counts = if quick then [ 64; 256 ] else [ 256; 1024; 4096; 16384 ] in
  let machine = Workloads.machine ~num_nodes:(List.fold_left Stdlib.max 1 node_counts) () in
  let plan = Workloads.water_plan ~molecules () in
  let results =
    List.map
      (fun n_total ->
        let dyn =
          Hslb.Fmo_app.run_dynamic ~rng:(Workloads.rng 7) machine plan ~n_total ()
        in
        let even =
          Hslb.Fmo_app.run_static_even ~rng:(Workloads.rng 7) machine plan ~n_total ()
        in
        let _, hslb =
          Hslb.Fmo_app.run_hslb ~rng:(Workloads.rng 7) machine plan ~n_total
            Hslb.Fmo_app.default_config
        in
        (n_total, dyn, even, hslb))
      node_counts
  in
  let n0, _, _, h0 = List.hd results in
  let base = h0.Fmo.Fmo_run.total_time *. float_of_int n0 in
  let rows =
    List.map
      (fun (n_total, dyn, even, hslb) ->
        let t r = r.Fmo.Fmo_run.total_time in
        let eff = 100. *. base /. (t hslb *. float_of_int n_total) in
        [
          string_of_int n_total;
          Table.fs (t dyn);
          Table.fs (t even);
          Table.fs (t hslb);
          Printf.sprintf "%.2fx" (t dyn /. t hslb);
          Printf.sprintf "%.1f%%" (100. *. (t dyn -. t hslb) /. t dyn);
          Printf.sprintf "%.0f%%" eff;
        ])
      results
  in
  Table.print fmt
    ~title:(Printf.sprintf "E4: strong scaling, (H2O)%d" molecules)
    ~header:
      [ "nodes"; "dynamic s"; "even-static s"; "HSLB s"; "speedup"; "gain"; "HSLB eff" ]
    rows;
  let pts f = List.map (fun (n, dyn, even, hslb) -> ignore even; (float_of_int n, f dyn hslb)) results in
  Chart.plot fmt ~title:"E4 figure: total time vs nodes (log-log shape via log-x)"
    [
      { Chart.label = "dynamic"; marker = 'd'; points = pts (fun d _ -> d.Fmo.Fmo_run.total_time) };
      { Chart.label = "HSLB"; marker = '*'; points = pts (fun _ h -> h.Fmo.Fmo_run.total_time) };
    ];
  Format.fprintf fmt
    "expected shape: HSLB >= DLB everywhere, gain grows with node count (paper: ~25%% at top)@."
