let print fmt ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let render row = String.concat "  " (List.mapi pad row) in
  Format.fprintf fmt "@.== %s ==@." title;
  Format.fprintf fmt "%s@." (render header);
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf fmt "%s@." rule;
  List.iter (fun row -> Format.fprintf fmt "%s@." (render row)) rows;
  Format.pp_print_flush fmt ()

let fs f =
  if f = 0. then "0"
  else if Float.abs f < 0.01 || Float.abs f >= 1e7 then Printf.sprintf "%.3g" f
  else Printf.sprintf "%.3f" f

let fs1 f = Printf.sprintf "%.1f" f
let pct f = Printf.sprintf "%+.1f%%" f
