(** ASCII line charts for the figure experiments.

    Renders series of (x, y) points on a log-x/linear-y character grid —
    enough to see crossovers and scaling shapes directly in the
    benchmark output, the way the paper's figures do. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;  (** (x, y); x > 0 for the log axis *)
}

(** [plot fmt ~title ~width ~height ~log_x series] — draw. Y axis is
    linear from 0 (or the min if negative) to the max; X axis is log
    when [log_x] (default true). Overlapping markers: the later series
    wins. *)
val plot :
  Format.formatter ->
  title:string ->
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  series list ->
  unit
