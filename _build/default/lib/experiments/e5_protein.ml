(* E5 — heterogeneous fragments (protein workload).

   Water clusters are mildly heterogeneous (embedding only); a peptide
   with mixed residue types has fragments of genuinely different basis
   sizes, the regime where static sizing shines. The paper's general
   claim: "any coarse-grained application with large tasks of diverse
   size can benefit". *)

let name = "E5_protein"
let describes = "Table: HSLB vs baselines on a size-heterogeneous peptide"

let run ?(quick = false) fmt =
  let residues = if quick then 12 else 24 in
  let n_total = if quick then 256 else 1024 in
  let machine = Workloads.machine ~num_nodes:n_total () in
  let plan = Workloads.peptide_plan ~residues () in
  let works = Array.map (fun t -> t.Fmo.Task.work_gflops) plan.Fmo.Task.monomers in
  let spread =
    Array.fold_left Float.max 0. works /. Array.fold_left Float.min infinity works
  in
  let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Workloads.rng 5) machine plan ~n_total () in
  let even = Hslb.Fmo_app.run_static_even ~rng:(Workloads.rng 5) machine plan ~n_total () in
  let hp, hslb =
    Hslb.Fmo_app.run_hslb ~rng:(Workloads.rng 5) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  let t r = r.Fmo.Fmo_run.total_time in
  let u r = 100. *. r.Fmo.Fmo_run.utilization in
  Table.print fmt
    ~title:
      (Printf.sprintf
         "E5: %d-residue random peptide on %d nodes (monomer work spread %.1fx, %d classes)"
         residues n_total spread
         (List.length hp.Hslb.Fmo_app.monomer_fits))
    ~header:[ "scheduler"; "total s"; "monomer s"; "dimer s"; "utilization"; "vs dynamic" ]
    [
      [ "dynamic (stock)"; Table.fs (t dyn); Table.fs dyn.Fmo.Fmo_run.monomer_time;
        Table.fs dyn.Fmo.Fmo_run.dimer_time; Printf.sprintf "%.1f%%" (u dyn); "--" ];
      [ "even-static"; Table.fs (t even); Table.fs even.Fmo.Fmo_run.monomer_time;
        Table.fs even.Fmo.Fmo_run.dimer_time; Printf.sprintf "%.1f%%" (u even);
        Table.pct (100. *. (t dyn -. t even) /. t dyn) ];
      [ "HSLB"; Table.fs (t hslb); Table.fs hslb.Fmo.Fmo_run.monomer_time;
        Table.fs hslb.Fmo.Fmo_run.dimer_time; Printf.sprintf "%.1f%%" (u hslb);
        Table.pct (100. *. (t dyn -. t hslb) /. t dyn) ];
    ];
  Format.fprintf fmt "predicted total %.2f s vs actual %.2f s@."
    hp.Hslb.Fmo_app.predicted_total (t hslb)
