(** Plain-text table rendering for the experiment reports. *)

(** [print fmt ~title ~header rows] — fixed-width table with a rule
    under the header; column widths fit the widest cell. *)
val print : Format.formatter -> title:string -> header:string list -> string list list -> unit

(** [fs f] — compact float cell ("12.34", "1.2e-05" for tiny). *)
val fs : float -> string

(** [fs1 f] — one-decimal float cell. *)
val fs1 : float -> string

(** [pct f] — percentage cell with sign ("+12.3%"). *)
val pct : float -> string
