(* E11 — torus-placement sensitivity (beyond the paper's tables).

   Blue Gene/P is a 3-D torus, and the paper's observation that the
   overhead coefficients "b, c [are] almost equal to zero" implicitly
   relies on groups being placed compactly. This experiment quantifies
   that assumption: the same even partition placed compactly vs
   scattered round-robin across the torus, with the b·n overhead term
   scaled by each group's communication factor
   (1 + alpha * diameter/machine-diameter). Compact placement keeps the
   paper's premise; scattered placement erodes it as the machine
   grows. *)

let name = "E11_placement"
let describes = "Ablation: compact vs scattered group placement on the torus"

let alpha = 40. (* congestion sensitivity of the collectives *)

let run ?(quick = false) fmt =
  let node_counts = if quick then [ 512 ] else [ 512; 4096; 32768 ] in
  let machine = Workloads.machine ~num_nodes:(List.fold_left Stdlib.max 1 node_counts) () in
  let rows =
    List.concat_map
      (fun n_total ->
        let torus = Topology.for_nodes n_total in
        let groups = 64 in
        let size = n_total / groups in
        let sizes = List.init groups (fun _ -> size) in
        (* representative monomer task law at this machine *)
        let law = Fmo.Cost_model.law machine ~work_gflops:150. ~nbf:19 in
        let eval_placement placement =
          let ids = Topology.place torus ~placement ~sizes in
          let dia =
            List.fold_left (fun acc g -> Stdlib.max acc (Topology.group_diameter torus g)) 0 ids
          in
          let worst =
            List.fold_left
              (fun acc g -> Float.max acc (Topology.comm_factor torus g ~alpha))
              1. ids
          in
          (* the placement scales only the communication term b·n *)
          let overhead = law.Scaling_law.b *. worst *. float_of_int size in
          let total =
            Scaling_law.eval
              (Scaling_law.make ~a:law.Scaling_law.a
                 ~b:(law.Scaling_law.b *. worst)
                 ~c:law.Scaling_law.c ~d:law.Scaling_law.d)
              (float_of_int size)
          in
          (dia, overhead, total)
        in
        let dia_c, ov_c, t_compact = eval_placement Topology.Compact in
        let dia_s, ov_s, t_scattered = eval_placement Topology.Scattered in
        [
          [
            string_of_int n_total;
            string_of_int size;
            Printf.sprintf "%d / %d" dia_c (Topology.diameter torus);
            Printf.sprintf "%d / %d" dia_s (Topology.diameter torus);
            Printf.sprintf "%.2e" ov_c;
            Printf.sprintf "%.2e" ov_s;
            Printf.sprintf "%.1fx" (ov_s /. Float.max 1e-300 ov_c);
            Table.pct (100. *. (t_scattered -. t_compact) /. t_compact);
          ];
        ])
      node_counts
  in
  Table.print fmt
    ~title:"E11: placement sensitivity, 64 even groups on a 3-D torus"
    ~header:
      [
        "nodes"; "group size"; "compact dia/max"; "scattered dia/max"; "comm s (compact)";
        "comm s (scattered)"; "overhead ratio"; "total slowdown";
      ]
    rows;
  Format.fprintf fmt
    "expected shape: compact placement keeps the paper's b~0 premise at every scale; \
     scattered placement inflates the communication term increasingly with machine size@."
