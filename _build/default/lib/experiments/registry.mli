(** Experiment registry: every table and figure the benchmark harness
    regenerates, indexed by the IDs used in DESIGN.md / EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "E4_scaling" *)
  describes : string;  (** which table/figure of the paper it regenerates *)
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : t list

(** [find id] — lookup by id (exact) or by its numeric prefix
    ("E4"). @raise Not_found. *)
val find : string -> t

(** [run_all ?quick fmt] — regenerate everything in order. *)
val run_all : ?quick:bool -> Format.formatter -> unit
