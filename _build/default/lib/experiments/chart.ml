type series = { label : string; marker : char; points : (float * float) list }

let plot fmt ~title ?(width = 64) ?(height = 16) ?(log_x = true) series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Chart.plot: no points";
  List.iter
    (fun (x, _) -> if log_x && x <= 0. then invalid_arg "Chart.plot: x must be > 0 on a log axis")
    all_points;
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let fmin l = List.fold_left Float.min infinity l in
  let fmax l = List.fold_left Float.max neg_infinity l in
  let x_lo = fmin xs and x_hi = fmax xs in
  let y_lo = Float.min 0. (fmin ys) and y_hi = fmax ys in
  let y_hi = if y_hi <= y_lo then y_lo +. 1. else y_hi in
  let tx x =
    if x_hi <= x_lo then 0
    else begin
      let t =
        if log_x then (log x -. log x_lo) /. (log x_hi -. log x_lo)
        else (x -. x_lo) /. (x_hi -. x_lo)
      in
      Stdlib.min (width - 1) (Stdlib.max 0 (int_of_float (Float.round (t *. float_of_int (width - 1)))))
    end
  in
  let ty y =
    let t = (y -. y_lo) /. (y_hi -. y_lo) in
    (height - 1)
    - Stdlib.min (height - 1) (Stdlib.max 0 (int_of_float (Float.round (t *. float_of_int (height - 1)))))
  in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  List.iter
    (fun s ->
      (* connect consecutive points with interpolated marks *)
      let rec draw = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          let c1 = tx x1 and c2 = tx x2 in
          let steps = Stdlib.max 1 (abs (c2 - c1)) in
          for k = 0 to steps do
            let t = float_of_int k /. float_of_int steps in
            let x = if log_x then exp (log x1 +. (t *. (log x2 -. log x1))) else x1 +. (t *. (x2 -. x1)) in
            let y = y1 +. (t *. (y2 -. y1)) in
            Bytes.set grid.(ty y) (tx x) s.marker
          done;
          draw rest
        | [ (x, y) ] -> Bytes.set grid.(ty y) (tx x) s.marker
        | [] -> ()
      in
      draw (List.sort compare s.points))
    series;
  Format.fprintf fmt "@.-- %s --@." title;
  Array.iteri
    (fun r row ->
      let y = y_hi -. (float_of_int r /. float_of_int (height - 1) *. (y_hi -. y_lo)) in
      Format.fprintf fmt "%10.2f |%s|@." y (Bytes.to_string row))
    grid;
  Format.fprintf fmt "%10s +%s+@." "" (String.make width '-');
  Format.fprintf fmt "%10s  %-*.4g%*.4g (%s x)@." "" (width / 2) x_lo (width - (width / 2)) x_hi
    (if log_x then "log" else "linear");
  List.iter (fun s -> Format.fprintf fmt "%10s  %c = %s@." "" s.marker s.label) series;
  Format.pp_print_flush fmt ()
