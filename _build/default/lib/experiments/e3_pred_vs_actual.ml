(* E3 — predicted vs actual times per class (Table-III-style detail).

   For each fragment class: the node allocation HSLB chose, the time the
   fitted model predicts, and the realized mean task time in the first
   SCC sweep of the executed simulation; plus phase and grand totals.
   The paper's validation: "HSLB predicted time and actual total times
   are very close to each other". *)

let name = "E3_pred_vs_actual"
let describes = "Table: HSLB predicted vs simulated-actual per class and total"

let run_one fmt ~molecules ~n_total =
  let machine = Workloads.machine ~num_nodes:n_total () in
  let plan = Workloads.water_plan ~molecules () in
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Workloads.rng 13) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  (* realized duration of each monomer task in sweep 0 *)
  let sweep0 = List.hd run.Fmo.Fmo_run.sweeps in
  let durations = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace durations e.Gddi.Sim.task (e.Gddi.Sim.finish -. e.Gddi.Sim.start))
    sweep0.Gddi.Sim.events;
  (* class membership of every fragment, aligned with monomer_fits *)
  let class_of = Hslb.Fmo_app.monomer_class_indices plan in
  let fits = Array.of_list hp.Hslb.Fmo_app.monomer_fits in
  let alloc = hp.Hslb.Fmo_app.allocation in
  let rows =
    Array.to_list
      (Array.mapi
         (fun ci (fc : Hslb.Classes.fitted) ->
           let nodes = alloc.Hslb.Alloc_model.nodes_per_task.(ci) in
           let predicted = Hslb.Classes.predicted_time fc nodes in
           (* actual: mean realized sweep-0 duration over the class *)
           let times = ref [] in
           Array.iteri
             (fun f cf ->
               if cf = ci && Hashtbl.mem durations f then
                 times := Hashtbl.find durations f :: !times)
             class_of;
           let mean =
             match !times with
             | [] -> nan
             | ts -> List.fold_left ( +. ) 0. ts /. float_of_int (List.length ts)
           in
           [
             fc.Hslb.Classes.cls.Hslb.Classes.name;
             string_of_int fc.Hslb.Classes.cls.Hslb.Classes.count;
             string_of_int nodes;
             Table.fs predicted;
             Table.fs mean;
             Table.pct (100. *. (mean -. predicted) /. predicted);
           ])
         fits)
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E3: (H2O)%d on %d nodes — per-class predicted vs actual (sweep 0)"
         molecules n_total)
    ~header:[ "class"; "count"; "nodes"; "predicted s"; "actual s"; "error" ]
    rows;
  Table.print fmt
    ~title:(Printf.sprintf "E3: totals at %d nodes" n_total)
    ~header:[ "quantity"; "predicted s"; "actual s"; "error" ]
    [
      [
        "monomer phase";
        Table.fs hp.Hslb.Fmo_app.predicted_monomer_time;
        Table.fs run.Fmo.Fmo_run.monomer_time;
        Table.pct
          (100.
          *. (run.Fmo.Fmo_run.monomer_time -. hp.Hslb.Fmo_app.predicted_monomer_time)
          /. run.Fmo.Fmo_run.monomer_time);
      ];
      [
        "dimer phase";
        Table.fs hp.Hslb.Fmo_app.predicted_dimer_time;
        Table.fs run.Fmo.Fmo_run.dimer_time;
        Table.pct
          (100.
          *. (run.Fmo.Fmo_run.dimer_time -. hp.Hslb.Fmo_app.predicted_dimer_time)
          /. run.Fmo.Fmo_run.dimer_time);
      ];
      [
        "total";
        Table.fs hp.Hslb.Fmo_app.predicted_total;
        Table.fs run.Fmo.Fmo_run.total_time;
        Table.pct
          (100.
          *. (run.Fmo.Fmo_run.total_time -. hp.Hslb.Fmo_app.predicted_total)
          /. run.Fmo.Fmo_run.total_time);
      ];
    ]

let run ?(quick = false) fmt =
  if quick then run_one fmt ~molecules:16 ~n_total:128
  else begin
    run_one fmt ~molecules:32 ~n_total:128;
    run_one fmt ~molecules:32 ~n_total:2048
  end
