(* E10 — scheduler ablation (beyond the paper's tables).

   Decomposes HSLB's advantage into its two ingredients: optimized
   group sizing and the static task map. Five schedulers on the same
   workload:

     dynamic        even groups, first-free-group pull  (stock DLB)
     stealing       even groups, round-robin seed + work stealing
     even-static    even groups, round-robin/LPT static maps
     semi-static    HSLB-sized groups, dynamic assignment
     HSLB           HSLB-sized groups, static maps (the full method)

   Expected: sizing provides most of the gain on heterogeneous
   workloads; the static map adds the dispatch-free tail on top. *)

let name = "E10_scheduler_ablation"
let describes = "Ablation: group sizing vs static assignment vs stealing"

let run_one fmt ~label ~plan ~n_total =
  let machine = Workloads.machine ~num_nodes:n_total () in
  let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Workloads.rng 5) machine plan ~n_total () in
  let steal = Hslb.Fmo_app.run_stealing ~rng:(Workloads.rng 5) machine plan ~n_total () in
  let even = Hslb.Fmo_app.run_static_even ~rng:(Workloads.rng 5) machine plan ~n_total () in
  let _, semi =
    Hslb.Fmo_app.run_semi_static ~rng:(Workloads.rng 5) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  let _, full =
    Hslb.Fmo_app.run_hslb ~rng:(Workloads.rng 5) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  let t r = r.Fmo.Fmo_run.total_time in
  let row label' r =
    [
      label';
      Table.fs (t r);
      Printf.sprintf "%.1f%%" (100. *. r.Fmo.Fmo_run.utilization);
      Table.pct (100. *. (t dyn -. t r) /. t dyn);
    ]
  in
  Table.print fmt
    ~title:(Printf.sprintf "E10: %s on %d nodes" label n_total)
    ~header:[ "scheduler"; "total s"; "utilization"; "vs dynamic" ]
    [
      row "dynamic (stock)" dyn;
      row "work stealing" steal;
      row "even-static" even;
      row "semi-static (sized+dyn)" semi;
      row "HSLB (sized+static)" full;
    ]

let run ?(quick = false) fmt =
  let water = Workloads.water_plan ~molecules:(if quick then 12 else 32) () in
  run_one fmt ~label:"water cluster" ~plan:water ~n_total:(if quick then 96 else 1024);
  if not quick then begin
    let peptide = Workloads.peptide_plan ~residues:16 () in
    run_one fmt ~label:"16-residue peptide" ~plan:peptide ~n_total:1024
  end;
  Format.fprintf fmt
    "expected shape: sizing (semi-static) captures most of HSLB's gain on heterogeneous \
     work; the static map adds the dispatch-free tail on top@."
