lib/experiments/workloads.mli: Fmo Machine Numerics
