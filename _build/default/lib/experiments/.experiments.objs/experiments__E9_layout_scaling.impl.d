lib/experiments/e9_layout_scaling.ml: Array Chart E8_cesm_table3 Format Layouts List Numerics Table Workloads
