lib/experiments/e5_protein.ml: Array Float Fmo Format Hslb List Printf Table Workloads
