lib/experiments/chart.mli: Format
