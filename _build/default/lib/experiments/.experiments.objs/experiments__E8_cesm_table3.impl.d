lib/experiments/e8_cesm_table3.ml: Format Hslb Layouts List Printf Table Workloads
