lib/experiments/e3_pred_vs_actual.ml: Array Fmo Gddi Hashtbl Hslb List Printf Table Workloads
