lib/experiments/e6_solver.ml: Format Hslb List Minlp Numerics Printf Scaling_law Sys Table Workloads
