lib/experiments/e7_samples.ml: Array Float Format Hslb List Numerics Printf Scaling_law Table Workloads
