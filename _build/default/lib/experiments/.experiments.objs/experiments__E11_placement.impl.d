lib/experiments/e11_placement.ml: Float Fmo Format List Printf Scaling_law Stdlib Table Topology Workloads
