lib/experiments/e4_scaling.ml: Chart Fmo Format Hslb List Printf Stdlib Table Workloads
