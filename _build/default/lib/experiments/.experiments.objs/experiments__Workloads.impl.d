lib/experiments/workloads.ml: Fmo Machine Numerics
