lib/experiments/e2_objectives.ml: Fmo Format Hslb List Printf Table Workloads
