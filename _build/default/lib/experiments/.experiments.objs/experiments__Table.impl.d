lib/experiments/table.ml: Array Float Format List Printf Stdlib String
