lib/experiments/e1_fit_quality.ml: Float Format Hslb List Printf Scaling_law Table Workloads
