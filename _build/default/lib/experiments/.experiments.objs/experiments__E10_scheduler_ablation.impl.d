lib/experiments/e10_scheduler_ablation.ml: Fmo Format Hslb Printf Table Workloads
