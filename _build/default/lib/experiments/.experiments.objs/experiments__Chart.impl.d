lib/experiments/chart.ml: Array Bytes Float Format List Stdlib String
