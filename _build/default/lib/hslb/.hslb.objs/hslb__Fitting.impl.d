lib/hslb/fitting.ml: Array Float List Numerics Scaling_law
