lib/hslb/model_store.ml: Alloc_model Buffer Classes Fitting List Printf Scaling_law String
