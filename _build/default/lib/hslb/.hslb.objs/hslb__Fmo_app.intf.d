lib/hslb/fmo_app.mli: Alloc_model Classes Fmo Gddi Machine Numerics Objective
