lib/hslb/objective.ml:
