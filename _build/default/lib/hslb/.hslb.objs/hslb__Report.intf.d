lib/hslb/report.mli: Classes Fmo Fmo_app Format
