lib/hslb/objective.mli:
