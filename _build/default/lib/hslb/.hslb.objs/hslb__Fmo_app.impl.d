lib/hslb/fmo_app.ml: Alloc_model Array Classes Fitting Float Fmo Fun Gddi Hashtbl List Numerics Objective Option Printf Stdlib
