lib/hslb/alloc_model.ml: Array Classes Fitting Float Fun List Lp Minlp Objective Option Printf Scaling_law Stdlib
