lib/hslb/classes.ml: Array Fitting List
