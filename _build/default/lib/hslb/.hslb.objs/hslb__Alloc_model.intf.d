lib/hslb/alloc_model.mli: Classes Minlp Objective
