lib/hslb/fitting.mli: Numerics Scaling_law
