lib/hslb/classes.mli: Fitting Numerics
