lib/hslb/report.ml: Alloc_model Array Classes Fitting Fmo Fmo_app Format Gddi List Printf Scaling_law Stdlib
