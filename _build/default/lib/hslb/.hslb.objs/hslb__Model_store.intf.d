lib/hslb/model_store.mli: Alloc_model Classes
