let to_csv fits =
  let b = Buffer.create 256 in
  Buffer.add_string b "# name,count,a,b,c,d\n";
  List.iter
    (fun (fc : Classes.fitted) ->
      let law = fc.Classes.fit.Fitting.law in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%.17g,%.17g,%.17g,%.17g\n" fc.Classes.cls.Classes.name
           fc.Classes.cls.Classes.count law.Scaling_law.a law.Scaling_law.b law.Scaling_law.c
           law.Scaling_law.d))
    fits;
  Buffer.contents b

let of_csv text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "" && (String.trim l).[0] <> '#')
      (String.split_on_char '\n' text)
  in
  List.map
    (fun line ->
      match List.map String.trim (String.split_on_char ',' line) with
      | [ name; count; a; b; c; d ] ->
        let law =
          Scaling_law.make ~a:(float_of_string a) ~b:(float_of_string b)
            ~c:(float_of_string c) ~d:(float_of_string d)
        in
        let cls =
          Classes.make ~name ~count:(int_of_string count) (fun ~nodes ->
              Scaling_law.eval_int law nodes)
        in
        {
          Classes.cls;
          fit =
            {
              Fitting.law;
              r2 = 1.;
              rmse = 0.;
              observations = [| (1., Scaling_law.eval_int law 1) |];
            };
        }
      | _ -> failwith ("Model_store.of_csv: malformed line: " ^ line))
    lines

let save path fits =
  let oc = open_out path in
  (try output_string oc (to_csv fits)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_csv text

let specs_of_csv ?allowed text =
  List.map
    (fun fc ->
      match allowed with
      | Some values -> Alloc_model.spec_of ~allowed:values fc
      | None -> Alloc_model.spec_of fc)
    (of_csv text)
