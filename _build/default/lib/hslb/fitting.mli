(** HSLB step 2: fit the performance model to benchmark observations.

    Solves the constrained least-squares problem of Table II (line 10):
    minimize [Σ ((y_i − a/n_i^c − b·n_i − d)/y_i)²] with [a,b,c,d >= 0],
    by projected Levenberg–Marquardt with multi-start (the objective is
    non-convex; the paper notes different starts give different
    parameters but similar-quality allocations). Residuals are relative
    so the fast large-[n] tail — where allocations land — carries the
    same weight as the slow small-[n] region. *)

type fit = {
  law : Scaling_law.t;
  r2 : float;  (** coefficient of determination on the observations *)
  rmse : float;
  observations : (float * float) array;  (** (nodes, seconds) pairs used *)
}

(** [fit_observations ~rng obs] — fit one task class.
    [obs] must contain at least 2 distinct node counts; the paper
    recommends >= 4 ("at least greater than four for each component").
    @raise Invalid_argument otherwise (fewer than 2). *)
val fit_observations : ?starts:int -> rng:Numerics.Rng.t -> (float * float) array -> fit

(** [predict fit n] — fitted time on [n] nodes. *)
val predict : fit -> int -> float

(** [recommended_sizes ~n_min ~n_max ~points] — geometric spacing of
    benchmark node counts between the extremes, as section III-C
    recommends (smallest allowed, largest possible, a few in between to
    capture curvature). *)
val recommended_sizes : n_min:int -> n_max:int -> points:int -> int list
