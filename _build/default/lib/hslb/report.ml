let pp_fits fmt fits =
  List.iter
    (fun (fc : Classes.fitted) ->
      Format.fprintf fmt "  %-28s count=%3d  R2=%.4f  T(n) = %a@."
        fc.Classes.cls.Classes.name fc.Classes.cls.Classes.count fc.Classes.fit.Fitting.r2
        Scaling_law.pp fc.Classes.fit.Fitting.law)
    fits

let partition_shape partition =
  let sizes = Array.map (fun g -> g.Gddi.Group.nodes) partition in
  let mn = Array.fold_left Stdlib.min max_int sizes in
  let mx = Array.fold_left Stdlib.max 0 sizes in
  Printf.sprintf "%d groups, %d..%d nodes (total %d)" (Array.length partition) mn mx
    (Gddi.Group.total_nodes partition)

let pp_plan fmt (hp : Fmo_app.hslb_plan) =
  Format.fprintf fmt "monomer classes:@.";
  pp_fits fmt hp.Fmo_app.monomer_fits;
  Format.fprintf fmt "allocation (nodes per task of each class):";
  Array.iter (Format.fprintf fmt " %d") hp.Fmo_app.allocation.Alloc_model.nodes_per_task;
  Format.fprintf fmt "@.monomer partition: %s@." (partition_shape hp.Fmo_app.partition);
  Format.fprintf fmt "dimer partition:   %s@." (partition_shape hp.Fmo_app.dimer_partition);
  Format.fprintf fmt "predicted: monomer %.3f s + corrections %.3f s = %.3f s@."
    hp.Fmo_app.predicted_monomer_time hp.Fmo_app.predicted_dimer_time hp.Fmo_app.predicted_total

let pp_comparison fmt rows =
  match rows with
  | [] -> ()
  | (_, baseline) :: _ ->
    let tb = baseline.Fmo.Fmo_run.total_time in
    Format.fprintf fmt "%-24s %10s %10s %10s %12s %10s@." "scheduler" "total s" "monomer s"
      "corr s" "utilization" "vs first";
    List.iter
      (fun (label, (r : Fmo.Fmo_run.result)) ->
        Format.fprintf fmt "%-24s %10.3f %10.3f %10.3f %11.1f%% %+9.1f%%@." label
          r.Fmo.Fmo_run.total_time r.Fmo.Fmo_run.monomer_time r.Fmo.Fmo_run.dimer_time
          (100. *. r.Fmo.Fmo_run.utilization)
          (100. *. (tb -. r.Fmo.Fmo_run.total_time) /. tb))
      rows
