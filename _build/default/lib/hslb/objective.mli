(** Allocation objectives considered by the paper (section III-D).

    [Min_max] minimizes the slowest component/fragment time (the
    makespan) — the objective used throughout the paper. [Max_min]
    maximizes the fastest time under a use-all-nodes constraint; the
    paper reports it slightly worse. [Min_sum] minimizes the sum of
    times and is reported to perform much worse (it starves cheap tasks
    to shave the expensive ones). Experiment E2 reproduces that
    ranking. *)

type t = Min_max | Max_min | Min_sum

val to_string : t -> string
val all : t list
