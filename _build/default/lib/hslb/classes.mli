(** Task classes and HSLB step 1 ("Gather").

    A class is a set of interchangeable coarse tasks (fragments of equal
    basis size, or one CESM component) sharing a scaling curve. The
    gather step benchmarks a representative of each class at several
    group sizes; the decision layer works entirely on classes. *)

type t = {
  name : string;
  count : int;  (** number of tasks in the class *)
  sample : nodes:int -> float;  (** run one benchmark (noisy) *)
}

type fitted = {
  cls : t;
  fit : Fitting.fit;
}

(** [make ~name ~count sample] — define a class. [count >= 1]. *)
val make : name:string -> count:int -> (nodes:int -> float) -> t

(** [gather cls ~sizes ~reps] — benchmark [cls] at each size in
    [sizes], [reps] repetitions each, returning (nodes, seconds)
    observations. *)
val gather : t -> sizes:int list -> reps:int -> (float * float) array

(** [gather_and_fit ~rng ~sizes ~reps classes] — steps 1+2 of HSLB for
    every class. *)
val gather_and_fit :
  rng:Numerics.Rng.t -> sizes:int list -> reps:int -> t list -> fitted list

(** [predicted_time fc n] — fitted time of one task of the class on [n]
    nodes. *)
val predicted_time : fitted -> int -> float
