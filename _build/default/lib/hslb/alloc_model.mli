(** HSLB step 3: the allocation MINLP and its solution.

    Decision variables are the nodes-per-task [n_c] for every task
    class; the model minimizes the makespan of one round in which each
    task runs in its own group (the paper's "few large tasks of diverse
    size" regime), subject to the node budget
    [Σ count_c · n_c <= N], optional "sweet-spot" restrictions of
    [n_c] to an allowed list (encoded with binaries + an SOS1 set, as
    the paper does for the ocean and atmosphere components), and the
    chosen objective.

    [Min_max] is a convex MINLP solved by {!Minlp.Oa} (or {!Minlp.Bnb}).
    [Max_min] is nonconvex in epigraph form, so it is solved by the
    customized bisection its structure admits (the time curves are
    decreasing in [n] up to their minimum). [Min_sum] is a separable
    convex resource-allocation problem and is solved exactly by greedy
    marginal allocation — the customized polynomial-time route the paper
    cites (Ibaraki & Katoh); its MINLP form remains available through
    {!build_minlp} for the solver benchmarks. *)

type spec = {
  fc : Classes.fitted;
  n_min : int;  (** smallest group size allowed for this class *)
  n_max : int;  (** largest group size allowed *)
  allowed : int list option;  (** sweet spots: restrict [n_c] to this list *)
}

(** [spec_of ?n_min ?n_max ?allowed fc] — defaults: [n_min = 1],
    [n_max] = node budget at solve time. *)
val spec_of : ?n_min:int -> ?n_max:int -> ?allowed:int list -> Classes.fitted -> spec

type allocation = {
  nodes_per_task : int array;  (** indexed like the spec list *)
  predicted_makespan : float;  (** max over classes of fitted time *)
  predicted_times : float array;  (** fitted per-class times *)
  stats : Minlp.Solution.stats;  (** zero for the bisection path *)
}

(** [restrict_to_values b ~var values] — restrict an integer variable
    of a model under construction to a discrete value list using
    binaries linked by equality rows plus an SOS1 set (the paper's
    sweet-spot encoding). Shared with the layout models. *)
val restrict_to_values : Minlp.Problem.Builder.b -> var:int -> int list -> unit

(** [build_minlp ~objective ~n_total specs] — the MINLP (for
    [Min_max]/[Min_sum]; raises on [Max_min]). Returned ints are the
    indices of the [n_c] variables; for [Min_max] the first variable is
    the makespan [T]. Exposed for the solver-benchmark experiment E6. *)
val build_minlp :
  objective:Objective.t -> n_total:int -> spec list -> Minlp.Problem.t * int array

(** [solve ?solver ?objective ~n_total specs] — full solve + decode.
    @raise Failure when the model is infeasible (budget below one node
    per task). *)
val solve :
  ?solver:[ `Oa | `Bnb ] ->
  ?objective:Objective.t ->
  n_total:int ->
  spec list ->
  allocation

(** [assignment_milp ~group_sizes ~duration ~num_tasks] — the second
    model family: groups fixed, assign tasks to groups minimizing
    predicted makespan (a pure MILP). Falls back to LPT when the node
    budget of the branch-and-bound is exhausted. Returns (task→group,
    predicted makespan). *)
val assignment_milp :
  ?max_nodes:int ->
  group_sizes:int array ->
  duration:(task:int -> group:int -> float) ->
  num_tasks:int ->
  unit ->
  int array * float
