type t = { name : string; count : int; sample : nodes:int -> float }
type fitted = { cls : t; fit : Fitting.fit }

let make ~name ~count sample =
  if count < 1 then invalid_arg "Classes.make: count must be >= 1";
  { name; count; sample }

let gather cls ~sizes ~reps =
  if sizes = [] then invalid_arg "Classes.gather: no sizes";
  if reps < 1 then invalid_arg "Classes.gather: reps must be >= 1";
  let obs = ref [] in
  List.iter
    (fun n ->
      if n < 1 then invalid_arg "Classes.gather: node count must be >= 1";
      for _ = 1 to reps do
        obs := (float_of_int n, cls.sample ~nodes:n) :: !obs
      done)
    sizes;
  Array.of_list (List.rev !obs)

let gather_and_fit ~rng ~sizes ~reps classes =
  List.map
    (fun cls ->
      let obs = gather cls ~sizes ~reps in
      { cls; fit = Fitting.fit_observations ~rng obs })
    classes

let predicted_time fc n = Fitting.predict fc.fit n
