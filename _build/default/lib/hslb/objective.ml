type t = Min_max | Max_min | Min_sum

let to_string = function
  | Min_max -> "min-max"
  | Max_min -> "max-min"
  | Min_sum -> "min-sum"

let all = [ Min_max; Max_min; Min_sum ]
