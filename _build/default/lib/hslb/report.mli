(** Human-readable reports of HSLB plans and runs.

    Shared by the CLI and the examples so the "what did HSLB decide and
    how did it go" rendering lives in one place. *)

(** [pp_fits fmt fits] — one line per class: name, count, R², law. *)
val pp_fits : Format.formatter -> Classes.fitted list -> unit

(** [pp_plan fmt plan] — fits, the allocation, partition shapes and the
    predicted phase times. *)
val pp_plan : Format.formatter -> Fmo_app.hslb_plan -> unit

(** [pp_comparison fmt rows] — scheduler comparison table;
    each row is (label, result). The first row is the baseline for the
    "vs first" column. *)
val pp_comparison : Format.formatter -> (string * Fmo.Fmo_run.result) list -> unit
