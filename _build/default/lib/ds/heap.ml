type 'a t = { mutable data : 'a array; mutable size : int; leq : 'a -> 'a -> bool }

let create ~leq = { data = [||]; size = 0; leq }
let is_empty h = h.size = 0
let size h = h.size

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.leq h.data.(i) h.data.(parent) && not (h.leq h.data.(parent) h.data.(i)) then begin
      let t = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- t;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.leq h.data.(l) h.data.(!smallest) && not (h.leq h.data.(!smallest) h.data.(l))
  then smallest := l;
  if r < h.size && h.leq h.data.(r) h.data.(!smallest) && not (h.leq h.data.(!smallest) h.data.(r))
  then smallest := r;
  if !smallest <> i then begin
    let t = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- t;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then raise Not_found else h.data.(0)
let peek_opt h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then raise Not_found;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let pop_opt h = if h.size = 0 then None else Some (pop h)

let to_list h =
  let acc = ref [] in
  for i = h.size - 1 downto 0 do
    acc := h.data.(i) :: !acc
  done;
  !acc

let fold f init h =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    acc := f !acc h.data.(i)
  done;
  !acc

let clear h = h.size <- 0
