lib/ds/heap.ml: Array Stdlib
