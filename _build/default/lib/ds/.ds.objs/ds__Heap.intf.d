lib/ds/heap.mli:
