(** Mutable binary min-heap.

    Shared by the discrete-event simulator (event queue ordered by time)
    and the branch-and-bound solvers (open-node list ordered by bound). *)

type 'a t

(** [create ~leq] — empty heap ordered by [leq] ([leq a b] = "a has
    priority over or equal to b"). *)
val create : leq:('a -> 'a -> bool) -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop h] — remove and return the minimum. @raise Not_found if empty. *)
val pop : 'a t -> 'a

(** [peek h] — the minimum without removing it. @raise Not_found if empty. *)
val peek : 'a t -> 'a

(** [pop_opt h] / [peek_opt h] — option-returning variants. *)
val pop_opt : 'a t -> 'a option

val peek_opt : 'a t -> 'a option

(** [to_list h] — all elements in unspecified order (heap unchanged). *)
val to_list : 'a t -> 'a list

(** [fold f init h] — fold over elements in unspecified order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit
