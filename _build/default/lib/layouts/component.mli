(** Coupled-model components for the layout extension.

    HSLB's conclusion section claims the method applies to "any
    coarse-grained application with large tasks of diverse size"; the
    follow-up work applied it to CESM's coupled components. A component
    here is a named task with a fitted scaling curve, to be placed by a
    layout model. *)

type t = {
  cname : string;
  law : Scaling_law.t;  (** fitted performance function *)
}

val make : name:string -> Scaling_law.t -> t

(** [time c n] — fitted time of [c] on [n] nodes. *)
val time : t -> int -> float

(** [of_fit ~name fit] — adapt a {!Hslb.Fitting.fit}. *)
val of_fit : name:string -> Hslb.Fitting.fit -> t
