type resolution = Deg1 | Deg1_8

(* Ground-truth curves calibrated so the published reference points are
   reproduced, e.g. 1°: atm(104) ≈ 307 s, ocn(24) ≈ 363 s, and 1/8°:
   ocn(2356) ≈ 3785 s, ocn(9812) ≈ 1128 s (the "unconstrained ocean"
   prediction). *)
let truth resolution ~ice:() =
  match resolution with
  | Deg1 ->
    let ice = Scaling_law.make ~a:4520. ~b:1e-5 ~c:0.85 ~d:3. in
    let lnd = Scaling_law.make ~a:1308. ~b:1e-5 ~c:0.95 ~d:1.5 in
    let atm = Scaling_law.make ~a:10360. ~b:1e-5 ~c:0.78 ~d:30. in
    let ocn = Scaling_law.make ~a:3804. ~b:2e-5 ~c:0.757 ~d:20. in
    (ice, lnd, atm, ocn)
  | Deg1_8 ->
    let ice = Scaling_law.make ~a:320_700. ~b:1e-5 ~c:0.786 ~d:100. in
    let lnd = Scaling_law.make ~a:39_800. ~b:1e-5 ~c:0.917 ~d:10. in
    let atm = Scaling_law.make ~a:4.425e6 ~b:1e-5 ~c:0.868 ~d:150. in
    let ocn = Scaling_law.make ~a:5.74e6 ~b:1e-5 ~c:0.95 ~d:200. in
    (ice, lnd, atm, ocn)

let component_law resolution which =
  let ice, lnd, atm, ocn = truth resolution ~ice:() in
  match which with
  | "ice" -> ice
  | "lnd" -> lnd
  | "atm" -> atm
  | "ocn" -> ocn
  | other -> invalid_arg ("Cesm_data.component_law: unknown component " ^ other)

(* the ice model's decomposition-dependent block sizes made its timings
   the noisiest in the published data *)
let noise_factor = function "ice" -> 3. | _ -> 1.

let sample_law ~rng ~noise law which ~nodes =
  let base = Scaling_law.eval_int law nodes in
  let sigma = noise *. noise_factor which in
  if sigma <= 0. then base
  else base *. Numerics.Rng.lognormal rng ~mu:(-0.5 *. sigma *. sigma) ~sigma

let simulate_component ~rng ?(noise = 0.03) resolution which ~nodes =
  sample_law ~rng ~noise (component_law resolution which) which ~nodes

let benchmark_classes ~rng ?(noise = 0.03) resolution =
  List.map
    (fun which ->
      let law = component_law resolution which in
      let class_rng = Numerics.Rng.split rng in
      Hslb.Classes.make ~name:which ~count:1 (fun ~nodes ->
          sample_law ~rng:class_rng ~noise law which ~nodes))
    [ "ice"; "lnd"; "atm"; "ocn" ]

let ocean_sweet_spots = function
  | Deg1 ->
    (* representative subset of {2, 4, ..., 480} ∪ {768} *)
    List.init 60 (fun i -> 8 * (i + 1)) @ [ 768 ]
  | Deg1_8 -> [ 480; 512; 2356; 3136; 4564; 6124; 19460 ]

let atm_allowed resolution ~n_total =
  let step =
    match resolution with
    | Deg1 -> Stdlib.max 8 (n_total / 128)
    | Deg1_8 -> Stdlib.max 4 (n_total / 128)
  in
  List.filter (fun v -> v <= n_total) (List.init (n_total / step) (fun i -> step * (i + 1)))

let manual_allocation resolution ~n_total =
  match resolution with
  | Deg1 ->
    (* expert rule of thumb from the published allocations: ~19% ocean,
       the rest to the atmosphere pool, ice:lnd ≈ 77:23 inside it *)
    let ocn = Stdlib.max 2 (2 * (int_of_float (0.19 *. float_of_int n_total) / 2)) in
    let atm = n_total - ocn in
    let ice = int_of_float (0.77 *. float_of_int atm) in
    let lnd = atm - ice in
    (ice, lnd, atm, ocn)
  | Deg1_8 ->
    (* largest hard-coded ocean count below ~29% of the budget *)
    let limit = 0.29 *. float_of_int n_total in
    let ocn =
      List.fold_left
        (fun acc v -> if float_of_int v <= limit then Stdlib.max acc v else acc)
        480 (ocean_sweet_spots Deg1_8)
    in
    let atm = n_total - ocn in
    let ice = int_of_float (0.917 *. float_of_int atm) in
    let lnd = atm - ice in
    (ice, lnd, atm, ocn)
