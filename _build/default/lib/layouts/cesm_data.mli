(** Synthetic coupled-climate-model component data.

    The follow-up application of HSLB ran on CESM timing data that is
    not redistributable; this module provides a synthetic equivalent
    whose ground-truth scaling curves echo the published magnitudes
    (1° resolution: atmosphere ≈ 307 s on 104 nodes, ocean ≈ 365 s on
    24 nodes, etc.; 1/8°: roughly 10× the work with ocean sweet spots).
    The decision layer never sees the curves — only noisy benchmark
    samples — so the full HSLB pipeline (gather, fit, solve, execute)
    is exercised end to end. *)

type resolution = Deg1  (** 1° grids *) | Deg1_8  (** 1/8° atmosphere, 1/10° ocean *)

(** Ground-truth scaling law of each component. *)
val truth : resolution -> ice:unit -> Scaling_law.t * Scaling_law.t * Scaling_law.t * Scaling_law.t
(** returns (ice, lnd, atm, ocn) *)

(** [benchmark_classes ~rng ~noise resolution] — one {!Hslb.Classes.t}
    per component, sampling the ground truth with log-normal noise
    (ice gets extra noise: the text reports its decomposition-dependent
    timings fit worst). Order: ice, lnd, atm, ocn. *)
val benchmark_classes :
  rng:Numerics.Rng.t -> ?noise:float -> resolution -> Hslb.Classes.t list

(** [simulate_component ~rng ~noise resolution which ~nodes] — one noisy
    "actual run" time. [which] ∈ ["ice"; "lnd"; "atm"; "ocn"]. *)
val simulate_component :
  rng:Numerics.Rng.t -> ?noise:float -> resolution -> string -> nodes:int -> float

(** [ocean_sweet_spots resolution] — the discrete ocean node counts the
    text reports as hard-coded ([2, 4, ..., 480, 768] at 1°;
    [480, 512, 2356, 3136, 4564, 6124, 19460] at 1/8°). *)
val ocean_sweet_spots : resolution -> int list

(** [atm_allowed resolution ~n_total] — atmosphere decomposition counts
    (grid-divisor-friendly values up to the budget). *)
val atm_allowed : resolution -> n_total:int -> int list

(** [manual_allocation resolution ~n_total] — the "human expert"
    baseline allocation [(ice, lnd, atm, ocn)], mimicking the manual
    column of the published comparison (proportions interpolated
    between the published node counts). *)
val manual_allocation : resolution -> n_total:int -> int * int * int * int
