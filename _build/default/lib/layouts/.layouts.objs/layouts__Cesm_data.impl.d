lib/layouts/cesm_data.ml: Hslb List Numerics Scaling_law Stdlib
