lib/layouts/layout_model.ml: Array Component Float Hslb List Lp Minlp Printf Scaling_law
