lib/layouts/cesm_data.mli: Hslb Numerics Scaling_law
