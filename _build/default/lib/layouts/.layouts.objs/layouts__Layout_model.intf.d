lib/layouts/layout_model.mli: Component Minlp
