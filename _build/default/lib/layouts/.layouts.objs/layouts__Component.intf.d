lib/layouts/component.mli: Hslb Scaling_law
