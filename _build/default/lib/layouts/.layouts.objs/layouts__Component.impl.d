lib/layouts/component.ml: Hslb Scaling_law
