type t = { cname : string; law : Scaling_law.t }

let make ~name law = { cname = name; law }
let time c n = Scaling_law.eval_int c.law n
let of_fit ~name (fit : Hslb.Fitting.fit) = { cname = name; law = fit.Hslb.Fitting.law }
