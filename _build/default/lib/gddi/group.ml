type t = { id : int; nodes : int }
type partition = t array

let even_partition ~total_nodes ~groups =
  if groups <= 0 then invalid_arg "Group.even_partition: groups must be positive";
  if groups > total_nodes then invalid_arg "Group.even_partition: more groups than nodes";
  let base = total_nodes / groups and extra = total_nodes mod groups in
  Array.init groups (fun id -> { id; nodes = (base + if id < extra then 1 else 0) })

let of_sizes sizes =
  if sizes = [] then invalid_arg "Group.of_sizes: empty";
  List.iteri (fun _ n -> if n <= 0 then invalid_arg "Group.of_sizes: non-positive size") sizes;
  Array.of_list (List.mapi (fun id nodes -> { id; nodes }) sizes)

let total_nodes p = Array.fold_left (fun acc g -> acc + g.nodes) 0 p
let num_groups = Array.length

let pp fmt p =
  Format.fprintf fmt "[%d groups:" (Array.length p);
  Array.iter (fun g -> Format.fprintf fmt " %d" g.nodes) p;
  Format.fprintf fmt "]"
