lib/gddi/schedulers.mli: Group
