lib/gddi/trace.mli: Format Group Sim
