lib/gddi/group.ml: Array Format List
