lib/gddi/trace.ml: Array Buffer Bytes Float Format Group List Printf Sim Stdlib
