lib/gddi/group.mli: Format
