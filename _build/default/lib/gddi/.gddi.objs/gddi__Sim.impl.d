lib/gddi/sim.ml: Array Ds Float Group List
