lib/gddi/sim.mli: Group
