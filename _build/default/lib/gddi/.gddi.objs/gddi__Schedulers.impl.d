lib/gddi/schedulers.ml: Array Float Fun
