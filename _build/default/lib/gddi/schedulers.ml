let round_robin ~num_tasks ~num_groups =
  if num_groups <= 0 then invalid_arg "Schedulers.round_robin: no groups";
  Array.init num_tasks (fun i -> i mod num_groups)

let assign_greedy partition ~predicted order =
  let ngroups = Array.length partition in
  if ngroups = 0 then invalid_arg "Schedulers: empty partition";
  let load = Array.make ngroups 0. in
  let assignment = Array.make (Array.length order) (-1) in
  Array.iter
    (fun task ->
      (* group whose finish time after adding this task is smallest *)
      let best = ref 0 and best_finish = ref infinity in
      for g = 0 to ngroups - 1 do
        let f = load.(g) +. predicted ~task ~group:partition.(g) in
        if f < !best_finish then begin
          best_finish := f;
          best := g
        end
      done;
      load.(!best) <- !best_finish;
      assignment.(task) <- !best)
    order;
  assignment

let lpt partition ~predicted ~num_tasks =
  let order = Array.init num_tasks Fun.id in
  (* rank tasks by duration on the (representative) first group *)
  let key task = predicted ~task ~group:partition.(0) in
  Array.sort (fun t1 t2 -> compare (key t2) (key t1)) order;
  assign_greedy partition ~predicted order

let greedy_min_finish partition ~predicted ~num_tasks =
  assign_greedy partition ~predicted (Array.init num_tasks Fun.id)

let predicted_makespan partition ~predicted assignment =
  let load = Array.make (Array.length partition) 0. in
  Array.iteri
    (fun task g -> load.(g) <- load.(g) +. predicted ~task ~group:partition.(g))
    assignment;
  Array.fold_left Float.max 0. load
