(** Execution-trace export.

    Turns a phase result into Gantt-style records for offline analysis
    (CSV for spreadsheets/plotting). Group utilization summaries are
    included because idle-tail inspection is how load imbalance is
    usually diagnosed. *)

(** [to_csv result] — header + one line per task event:
    [task,group,start,finish,duration]. *)
val to_csv : Sim.result -> string

(** [summary_csv partition result] — per-group lines:
    [group,nodes,busy,finish,utilization]. *)
val summary_csv : Group.partition -> Sim.result -> string

(** [write_csv path result] — write [to_csv] to a file. *)
val write_csv : string -> Sim.result -> unit

(** [pp_gantt fmt ~width partition result] — coarse ASCII Gantt chart,
    one row per group, [width] characters across the makespan. *)
val pp_gantt : Format.formatter -> width:int -> Group.partition -> Sim.result -> unit
