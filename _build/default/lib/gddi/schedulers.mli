(** Static assignment heuristics (baselines and building blocks).

    These produce the [Sim.Static] maps that the simulator consumes.
    [lpt] is the classic longest-processing-time greedy list scheduler —
    the strongest "cheap" static baseline HSLB is compared against;
    [round_robin] is the naive even spread. *)

(** [round_robin ~num_tasks ~num_groups] — task [i] to group
    [i mod num_groups]. *)
val round_robin : num_tasks:int -> num_groups:int -> int array

(** [lpt partition ~predicted ~num_tasks] — sort tasks by predicted
    duration (on their would-be group) descending, repeatedly assign to
    the group with the earliest predicted finish. [predicted ~task
    ~group] must be deterministic (it is the planner's estimate, not a
    noisy sample). *)
val lpt :
  Group.partition -> predicted:(task:int -> group:Group.t -> float) -> num_tasks:int -> int array

(** [greedy_min_finish] — like [lpt] but keeps the submission order
    (what a naive static port of the dynamic scheduler would do). *)
val greedy_min_finish :
  Group.partition -> predicted:(task:int -> group:Group.t -> float) -> num_tasks:int -> int array

(** [predicted_makespan partition ~predicted assignment] — planner's
    view of an assignment's makespan. *)
val predicted_makespan :
  Group.partition -> predicted:(task:int -> group:Group.t -> float) -> int array -> float
