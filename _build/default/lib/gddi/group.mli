(** Processor groups — the GDDI abstraction.

    GAMESS's generalized distributed data interface splits the machine's
    nodes into groups; each coarse task (a fragment SCF) runs inside one
    group. A partition is the sizing of those groups; finding the best
    partition is what HSLB optimizes. *)

type t = { id : int; nodes : int }

type partition = t array

(** [even_partition ~total_nodes ~groups] — split as evenly as possible
    (first [total_nodes mod groups] groups get one extra node).
    Requires [groups <= total_nodes]. *)
val even_partition : total_nodes:int -> groups:int -> partition

(** [of_sizes sizes] — partition with the given group sizes (all > 0). *)
val of_sizes : int list -> partition

val total_nodes : partition -> int
val num_groups : partition -> int
val pp : Format.formatter -> partition -> unit
