let to_csv (r : Sim.result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "task,group,start,finish,duration\n";
  List.iter
    (fun (e : Sim.event) ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%.6f,%.6f,%.6f\n" e.Sim.task e.Sim.group e.Sim.start e.Sim.finish
           (e.Sim.finish -. e.Sim.start)))
    r.Sim.events;
  Buffer.contents b

let summary_csv partition (r : Sim.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b "group,nodes,busy,finish,utilization\n";
  Array.iteri
    (fun g busy ->
      let util = if r.Sim.makespan <= 0. then 1. else busy /. r.Sim.makespan in
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%.6f,%.6f,%.4f\n" g partition.(g).Group.nodes busy
           r.Sim.group_finish.(g) util))
    r.Sim.group_busy;
  Buffer.contents b

let write_csv path r =
  let oc = open_out path in
  (try output_string oc (to_csv r)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let pp_gantt fmt ~width partition (r : Sim.result) =
  if width < 10 then invalid_arg "Trace.pp_gantt: width too small";
  let span = Float.max r.Sim.makespan 1e-12 in
  let ngroups = Array.length partition in
  let rows = Array.init ngroups (fun _ -> Bytes.make width '.') in
  List.iter
    (fun (e : Sim.event) ->
      let first = int_of_float (Float.floor (e.Sim.start /. span *. float_of_int width)) in
      let last =
        Stdlib.min (width - 1)
          (int_of_float (Float.ceil (e.Sim.finish /. span *. float_of_int width)) - 1)
      in
      (* alternate fill characters so adjacent tasks are visible *)
      let ch = if e.Sim.task mod 2 = 0 then '#' else '=' in
      for i = Stdlib.max 0 first to last do
        Bytes.set rows.(e.Sim.group) i ch
      done)
    r.Sim.events;
  Format.fprintf fmt "@[<v>makespan %.4f s over %d groups@," r.Sim.makespan ngroups;
  Array.iteri
    (fun g row ->
      Format.fprintf fmt "g%-3d(%4d nodes) |%s|@," g partition.(g).Group.nodes
        (Bytes.to_string row))
    rows;
  Format.fprintf fmt "@]"
