examples/quickstart.mli:
