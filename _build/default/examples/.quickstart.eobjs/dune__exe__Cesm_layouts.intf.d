examples/cesm_layouts.mli:
