examples/water_cluster.ml: Array Fmo Format Hslb List Machine Numerics
