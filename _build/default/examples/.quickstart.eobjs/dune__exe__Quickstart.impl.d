examples/quickstart.ml: Array Fmo Format Hslb List Machine Numerics Scaling_law
