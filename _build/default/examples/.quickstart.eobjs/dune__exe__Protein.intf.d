examples/protein.mli:
