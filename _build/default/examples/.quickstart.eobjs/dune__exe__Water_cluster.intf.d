examples/water_cluster.mli:
