examples/objective_study.ml: Array Format Hslb List Numerics Scaling_law
