examples/cesm_layouts.ml: Format Hslb Layouts List Numerics Scaling_law
