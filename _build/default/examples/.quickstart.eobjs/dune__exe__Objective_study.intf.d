examples/objective_study.mli:
