(* HSLB on a size-heterogeneous protein fragmentation.

   A random 20-residue peptide mixes small (glycine) and large
   (tryptophan) residues, giving fragments of genuinely different SCF
   cost — the "large tasks of diverse size" regime where the paper
   argues static balancing beats dynamic. Shows per-class fits, the
   MINLP allocation and the resulting group sizes. *)

let () =
  let machine = Machine.make ~name:"intrepid-slice" ~num_nodes:1024 () in
  let molecule = Fmo.Molecule.random_peptide ~rng:(Numerics.Rng.create 3) 20 in
  let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd) in
  Format.printf "%a@." Fmo.Molecule.pp molecule;
  let n_total = 1024 in
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 9) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  Format.printf "@.fragment classes and fitted models:@.";
  List.iteri
    (fun i (fc : Hslb.Classes.fitted) ->
      Format.printf "  %-28s count=%2d  nodes/task=%4d  R2=%.4f  T(n) = %a@."
        fc.Hslb.Classes.cls.Hslb.Classes.name fc.Hslb.Classes.cls.Hslb.Classes.count
        hp.Hslb.Fmo_app.allocation.Hslb.Alloc_model.nodes_per_task.(i)
        fc.Hslb.Classes.fit.Hslb.Fitting.r2 Scaling_law.pp fc.Hslb.Classes.fit.Hslb.Fitting.law)
    hp.Hslb.Fmo_app.monomer_fits;
  let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 9) machine plan ~n_total () in
  Format.printf "@.dynamic: %.2f s (utilization %.1f%%)@." dyn.Fmo.Fmo_run.total_time
    (100. *. dyn.Fmo.Fmo_run.utilization);
  Format.printf "HSLB:    %.2f s (utilization %.1f%%), predicted %.2f s@."
    run.Fmo.Fmo_run.total_time
    (100. *. run.Fmo.Fmo_run.utilization)
    hp.Hslb.Fmo_app.predicted_total;
  Format.printf "improvement over dynamic: %.1f%%@."
    (100. *. (dyn.Fmo.Fmo_run.total_time -. run.Fmo.Fmo_run.total_time)
    /. dyn.Fmo.Fmo_run.total_time)
