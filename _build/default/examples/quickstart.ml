(* Quickstart: HSLB on a small water cluster.

   Builds (H2O)16 fragmented at one molecule per fragment, plans an FMO2
   run on a 64-node simulated Blue Gene/P slice, then compares the stock
   dynamic load balancer against the full HSLB pipeline
   (gather -> fit -> solve MINLP -> execute). *)

let () =
  let machine = Machine.make ~name:"bgp-slice" ~num_nodes:64 () in
  let rng = Numerics.Rng.create 42 in
  let molecule = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.split rng) 16 in
  let fragments = Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd in
  let plan = Fmo.Task.fmo2_plan fragments in
  Format.printf "workload: %a@." Fmo.Molecule.pp molecule;
  Format.printf "  %d fragments, %d SCF dimers, %d ES dimers, %.0f GFLOP total@."
    (Array.length plan.Fmo.Task.fragments)
    (Array.length plan.Fmo.Task.scf_dimers)
    (Array.length plan.Fmo.Task.es_dimers)
    (Fmo.Task.total_work plan);

  let n_total = 64 in

  (* baseline: stock GDDI dynamic load balancing on even groups *)
  let dyn =
    Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 7) machine plan ~n_total ()
  in
  Format.printf "@.dynamic (stock DLB):   %8.2f s  (utilization %.1f%%)@."
    dyn.Fmo.Fmo_run.total_time
    (100. *. dyn.Fmo.Fmo_run.utilization);

  (* HSLB: gather, fit, solve, execute *)
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 7) machine plan ~n_total
      Hslb.Fmo_app.default_config
  in
  Format.printf "HSLB (static, MINLP):  %8.2f s  (utilization %.1f%%)@."
    run.Fmo.Fmo_run.total_time
    (100. *. run.Fmo.Fmo_run.utilization);
  Format.printf "@.HSLB internals:@.";
  List.iter
    (fun (fc : Hslb.Classes.fitted) ->
      Format.printf "  class %-24s count=%3d  fit R²=%.4f  %a@."
        fc.Hslb.Classes.cls.Hslb.Classes.name fc.Hslb.Classes.cls.Hslb.Classes.count
        fc.Hslb.Classes.fit.Hslb.Fitting.r2 Scaling_law.pp fc.Hslb.Classes.fit.Hslb.Fitting.law)
    hp.Hslb.Fmo_app.monomer_fits;
  Format.printf "  allocation (nodes per fragment class): ";
  Array.iter (Format.printf "%d ") hp.Hslb.Fmo_app.allocation.Hslb.Alloc_model.nodes_per_task;
  Format.printf "@.  predicted total %.2f s, actual %.2f s@."
    hp.Hslb.Fmo_app.predicted_total run.Fmo.Fmo_run.total_time;
  let speedup = dyn.Fmo.Fmo_run.total_time /. run.Fmo.Fmo_run.total_time in
  Format.printf "@.HSLB speedup over dynamic: %.2fx@." speedup
