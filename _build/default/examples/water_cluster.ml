(* Strong-scaling study on a water cluster.

   The paper's headline scenario: an (H2O)48 cluster, FMO2, compared
   across schedulers at several machine sizes. Demonstrates the public
   API for workload construction, baselines and the HSLB pipeline, and
   prints a scaling table like experiment E4. *)

let () =
  let molecules = 48 in
  let node_counts = [ 192; 768; 3072 ] in
  let machine = Machine.make ~name:"intrepid-slice" ~num_nodes:(List.fold_left max 1 node_counts) () in
  let molecule = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 1) molecules in
  let fragments = Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd in
  let plan = Fmo.Task.fmo2_plan fragments in
  Format.printf "%a — %d fragments, %d SCF dimers, %d ES dimers, %.0f GFLOP@."
    Fmo.Molecule.pp molecule
    (Array.length plan.Fmo.Task.fragments)
    (Array.length plan.Fmo.Task.scf_dimers)
    (Array.length plan.Fmo.Task.es_dimers)
    (Fmo.Task.total_work plan);
  Format.printf "@.%8s  %10s  %10s  %10s  %8s@." "nodes" "dynamic" "even" "HSLB" "speedup";
  List.iter
    (fun n_total ->
      let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 7) machine plan ~n_total () in
      let even =
        Hslb.Fmo_app.run_static_even ~rng:(Numerics.Rng.create 7) machine plan ~n_total ()
      in
      let _, hslb =
        Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 7) machine plan ~n_total
          Hslb.Fmo_app.default_config
      in
      Format.printf "%8d  %9.2fs  %9.2fs  %9.2fs  %7.2fx@." n_total
        dyn.Fmo.Fmo_run.total_time even.Fmo.Fmo_run.total_time hslb.Fmo.Fmo_run.total_time
        (dyn.Fmo.Fmo_run.total_time /. hslb.Fmo.Fmo_run.total_time))
    node_counts
