(* Objective-function study on the allocation MINLP.

   Section III-D of the paper considers three objectives and reports
   min-max ≈ max-min ≪ min-sum. This example makes the mechanism
   visible on a two-class workload: min-sum starves the cheap class to
   shave node-seconds, which wrecks the makespan. *)

let fitted_of_law ~name ~count law =
  let cls = Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes) in
  List.hd
    (Hslb.Classes.gather_and_fit ~rng:(Numerics.Rng.create 11)
       ~sizes:[ 1; 2; 4; 8; 16; 64; 256 ] ~reps:1 [ cls ])

let () =
  let heavy = Scaling_law.make ~a:900. ~b:1e-6 ~c:0.92 ~d:2. in
  let light = Scaling_law.make ~a:150. ~b:1e-6 ~c:0.95 ~d:0.5 in
  let specs =
    [
      Hslb.Alloc_model.spec_of (fitted_of_law ~name:"heavy" ~count:2 heavy);
      Hslb.Alloc_model.spec_of (fitted_of_law ~name:"light" ~count:6 light);
    ]
  in
  let n_total = 256 in
  Format.printf "two classes (2x heavy, 6x light) on %d nodes:@.@." n_total;
  Format.printf "%-10s  %-18s  %-18s  %10s@." "objective" "heavy nodes/task" "light nodes/task"
    "makespan";
  List.iter
    (fun objective ->
      let alloc =
        match Hslb.Alloc_model.solve ~objective ~n_total specs with
        | Ok a -> a
        | Error st ->
          failwith ("objective_study: " ^ Minlp.Solution.status_to_string st)
      in
      Format.printf "%-10s  %-18d  %-18d  %9.2fs@."
        (Hslb.Objective.to_string objective)
        alloc.Hslb.Alloc_model.nodes_per_task.(0)
        alloc.Hslb.Alloc_model.nodes_per_task.(1)
        alloc.Hslb.Alloc_model.predicted_makespan)
    Hslb.Objective.all;
  Format.printf
    "@.min-sum equalizes marginal node-seconds across all tasks, over-serving the six@.\
     light tasks and starving the heavy ones that set the makespan — exactly why the@.\
     paper rejects it (section III-D).@."
