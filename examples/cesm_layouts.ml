(* Coupled-component layout optimization (the CESM-style extension).

   Runs the full HSLB pipeline on synthetic coupled-climate components:
   benchmark each component, fit scaling curves, then solve the three
   layout MINLPs of the follow-up application and compare against the
   manual expert allocation. *)

let solve_ok layout config inputs =
  match Layouts.Layout_model.solve layout config inputs with
  | Ok a -> a
  | Error st ->
    failwith ("layout solve failed: " ^ Minlp.Solution.status_to_string st)

let () =
  let n_total = 512 in
  let resolution = Layouts.Cesm_data.Deg1 in
  let rng = Numerics.Rng.create 77 in
  (* steps 1+2: benchmark and fit each component *)
  let classes = Layouts.Cesm_data.benchmark_classes ~rng resolution in
  let fits =
    Hslb.Classes.gather_and_fit ~rng
      ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:2048 ~points:6)
      ~reps:2 classes
  in
  Format.printf "fitted components:@.";
  List.iter
    (fun (fc : Hslb.Classes.fitted) ->
      Format.printf "  %-4s R2=%.4f  T(n) = %a@." fc.Hslb.Classes.cls.Hslb.Classes.name
        fc.Hslb.Classes.fit.Hslb.Fitting.r2 Scaling_law.pp fc.Hslb.Classes.fit.Hslb.Fitting.law)
    fits;
  let comp name =
    Layouts.Component.of_fit ~name
      (List.find
         (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
         fits)
        .Hslb.Classes.fit
  in
  let inputs =
    { Layouts.Layout_model.ice = comp "ice"; lnd = comp "lnd"; atm = comp "atm"; ocn = comp "ocn" }
  in
  (* step 3: the three layout models *)
  let config =
    {
      (Layouts.Layout_model.default_config ~n_total) with
      Layouts.Layout_model.ocn_allowed = Some (Layouts.Cesm_data.ocean_sweet_spots resolution);
    }
  in
  Format.printf "@.layout optimization on %d nodes:@." n_total;
  List.iter
    (fun layout ->
      let a = solve_ok layout config inputs in
      Format.printf "  %-22s total %8.2f s  [" (Layouts.Layout_model.layout_name layout)
        a.Layouts.Layout_model.total;
      List.iter (fun (n, v) -> Format.printf " %s:%d" n v) a.Layouts.Layout_model.nodes;
      Format.printf " ]@.")
    [
      Layouts.Layout_model.Hybrid;
      Layouts.Layout_model.Sequential_group;
      Layouts.Layout_model.Fully_sequential;
    ];
  (* compare the hybrid solution against the manual expert baseline *)
  let mi, ml, ma, mo = Layouts.Cesm_data.manual_allocation resolution ~n_total in
  let t name n = Layouts.Component.time (comp name) n in
  let manual_total =
    Layouts.Layout_model.layout_total Layouts.Layout_model.Hybrid ~ice:(t "ice" mi)
      ~lnd:(t "lnd" ml) ~atm:(t "atm" ma) ~ocn:(t "ocn" mo)
  in
  let hslb = solve_ok Layouts.Layout_model.Hybrid config inputs in
  Format.printf "@.manual expert allocation [ice:%d lnd:%d atm:%d ocn:%d]: %.2f s@." mi ml ma mo
    manual_total;
  Format.printf "HSLB improvement over manual: %.1f%%@."
    (100. *. (manual_total -. hslb.Layouts.Layout_model.total) /. manual_total)
