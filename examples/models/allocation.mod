# HSLB allocation model for four coupled components on 2048 nodes,
# written in the toolkit's AMPL-like language (compare Table I of the
# follow-up application). Solve with:
#   dune exec bin/hslb_cli.exe -- minlp examples/models/allocation.mod
var T >= 0;
var T_icelnd >= 0;
var n_ice integer >= 1 <= 2048;
var n_lnd integer >= 1 <= 2048;
var n_atm integer >= 1 <= 2048;
var n_ocn integer >= 1 <= 2048;
minimize T;
# hybrid layout: max(max(ice,lnd) + atm, ocn)
s.t. icelnd_ice: 4520 / n_ice^0.85 + 3 - T_icelnd <= 0;
s.t. icelnd_lnd: 1308 / n_lnd^0.95 + 1.5 - T_icelnd <= 0;
s.t. atm_after:  T_icelnd + 10360 / n_atm^0.78 + 30 - T <= 0;
s.t. ocn_conc:   3804 / n_ocn^0.757 + 20 - T <= 0;
s.t. pool:       n_ice + n_lnd - n_atm <= 0;
s.t. budget:     n_atm + n_ocn <= 2048;
